"""Scheduler invariants: cone costs, partitions, batch coalescing.

Three layers of the cone-cost scheduler
(:mod:`repro.simulate.schedule`) are pinned here:

* the **cost model** - cone gate counts must match an independent BFS
  over :class:`Network` fanout (the scheduler walks the *compiled*
  program's reader lists; the two structures must agree gate for gate);
* the **schedulers** - by hypothesis property, every scheduler output
  is an exact disjoint cover of the fault list (a permutation of the
  input: no loss, no duplication) with no empty shard, for arbitrary
  fault counts, shard counts and cost vectors - ``shards > count`` and
  the empty fault list included - plus the LPT balance guarantee;
* the **vector coalescer** - plans cover every fault exactly once,
  respect the batch bound, only merge sound site sets (no site driven
  from inside the union cone), and the merged pass is bit-identical to
  the per-group passes it replaces.

Cross-engine bit-identity of every engine x schedule combination lives
in the differential harness (``test_engine_equivalence.py``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from engine_test_utils import all_faults

from repro.circuits.figures import fig9_cell
from repro.circuits.generators import (
    and_cone,
    c17,
    domino_carry_chain,
    skewed_cone_network,
)
from repro.netlist import Network
from repro.simulate import PatternSet, fault_costs, partition_faults
from repro.simulate.compiled import compile_network
from repro.simulate.schedule import (
    DEFAULT_SCHEDULE,
    SCHEDULES,
    available_schedules,
    cone_gate_count,
    contiguous_schedule,
    cost_schedule,
    fault_site,
    get_schedule,
    interleaved_schedule,
)
from repro.simulate.sharded import shard_bounds
from repro.simulate.vector import (
    COALESCE_MAX_BATCH,
    vector_compile,
)
from repro.simulate.schedule import cone_counts_batch, cone_gates


FIXED_CIRCUITS = [
    and_cone(5),
    c17(),
    domino_carry_chain(4),
    skewed_cone_network(depth=7, islands=5),
]


def fig9_network() -> Network:
    """The Fig. 9 example cell wrapped as a one-gate network."""
    cell = fig9_cell()
    network = Network("fig9_cell")
    for name in cell.inputs:
        network.add_input(name)
    network.add_gate("u1", cell, {name: name for name in cell.inputs}, cell.output)
    network.mark_output(cell.output)
    return network


def bfs_cone_gate_names(network: Network, net: str) -> set:
    """Independent cone walk over ``Network.fanout_of`` (not the
    compiled program): every gate reachable downstream of ``net``."""
    seen: set = set()
    frontier = [net]
    while frontier:
        current = frontier.pop()
        for gate_name, _pin in network.fanout_of(current):
            if gate_name not in seen:
                seen.add(gate_name)
                frontier.append(network.gates[gate_name].output)
    return seen


# -- cone-cost metadata vs independent BFS --------------------------------------------


@pytest.mark.parametrize(
    "network", FIXED_CIRCUITS + [fig9_network()], ids=lambda n: n.name
)
class TestConeCostModel:
    def test_cone_gate_counts_match_network_fanout_bfs(self, network):
        compiled = compile_network(network)
        for net, slot in compiled.slot_of_net.items():
            expected = bfs_cone_gate_names(network, net)
            assert cone_gate_count(compiled, slot) == len(expected), net
            assert {
                compiled.gates[index].name for index in cone_gates(compiled, slot)
            } == expected, net

    def test_fault_costs_are_one_plus_cone_gates(self, network):
        faults = all_faults(network)
        costs = fault_costs(network, faults)
        assert len(costs) == len(faults)
        for fault, cost in zip(faults, costs):
            net = fault.net if fault.kind == "stuck" else (
                network.gates[fault.gate].output
            )
            assert cost == 1 + len(bfs_cone_gate_names(network, net)), (
                fault.describe()
            )

    def test_costs_are_memoised_per_compilation(self, network):
        compiled = compile_network(network)
        slot = compiled.num_slots - 1
        assert cone_gates(compiled, slot) is cone_gates(compiled, slot)

    def test_cone_counts_batch_matches_per_site_bfs(self, network):
        # The batched bit-plane sweep the pricing pass uses must agree
        # with the per-site BFS on every slot - and record counts only,
        # never materialise the sets.
        compiled = compile_network(network, cache="off")
        cone_counts_batch(compiled, list(compiled.slot_of_net.values()) + [-1])
        assert not compiled._cone_map
        assert -1 not in compiled._cone_counts
        for net, slot in compiled.slot_of_net.items():
            assert compiled._cone_counts[slot] == len(
                bfs_cone_gate_names(network, net)
            ), net
            assert cone_gate_count(compiled, slot) == compiled._cone_counts[slot]

    def test_cone_counts_batch_skips_memoised_sets(self, network):
        compiled = compile_network(network, cache="off")
        slots = list(compiled.slot_of_net.values())
        materialised = cone_gates(compiled, slots[0])
        cone_counts_batch(compiled, slots)
        assert slots[0] not in compiled._cone_counts
        assert cone_gates(compiled, slots[0]) is materialised
        assert cone_gate_count(compiled, slots[0]) == len(materialised)


def test_skewed_network_is_actually_skewed():
    """The scheduling adversary must expose the skew the cost model is
    meant to see: spine-head faults orders beyond island faults."""
    network = skewed_cone_network(depth=12, islands=6)
    compiled = compile_network(network)
    spine_head = compiled.slot_of_net["s0"]
    island_input = compiled.slot_of_net["t0a"]
    assert cone_gate_count(compiled, spine_head) == 12
    assert cone_gate_count(compiled, island_input) == 1
    assert cone_gate_count(compiled, compiled.slot_of_net["z0"]) == 0


# -- scheduler partition invariants (hypothesis) ---------------------------------------


cost_vectors = st.lists(st.integers(min_value=0, max_value=50), max_size=120)


def assert_exact_disjoint_cover(parts, count, shards):
    flat = [index for part in parts for index in part]
    assert sorted(flat) == list(range(count))  # permutation: no loss, no dup
    assert all(part for part in parts)  # no empty shard, ever
    assert len(parts) <= max(shards, 0)
    if count == 0:
        assert parts == []


@pytest.mark.parametrize("name", available_schedules())
@settings(max_examples=60)
@given(costs=cost_vectors, shards=st.integers(min_value=1, max_value=40))
def test_property_every_schedule_is_an_exact_disjoint_cover(name, costs, shards):
    """The core contract, for arbitrary counts, shard counts and cost
    vectors - ``shards > count`` and the empty fault list included."""
    parts = SCHEDULES[name](costs, shards)
    assert_exact_disjoint_cover(parts, len(costs), shards)


@settings(max_examples=60)
@given(costs=cost_vectors, shards=st.integers(min_value=1, max_value=40))
def test_property_lpt_balance_guarantee(costs, shards):
    """LPT's classic bound: max shard load <= min shard load + max cost."""
    parts = cost_schedule(costs, shards)
    if not parts:
        return
    loads = [sum(costs[index] for index in part) for part in parts]
    assert max(loads) <= min(loads) + max(costs)


@settings(max_examples=40)
@given(count=st.integers(min_value=0, max_value=120), shards=st.integers(1, 40))
def test_property_contiguous_and_interleaved_shapes(count, shards):
    costs = [1] * count
    contiguous = contiguous_schedule(costs, shards)
    for part in contiguous:  # contiguous runs
        assert part == list(range(part[0], part[0] + len(part)))
    interleaved = interleaved_schedule(costs, shards)
    for stripe, part in enumerate(interleaved):  # round-robin stripes
        assert part == list(range(stripe, count, len(interleaved)))


@settings(max_examples=25)
@given(
    depth=st.integers(min_value=1, max_value=10),
    islands=st.integers(min_value=0, max_value=6),
    shards=st.integers(min_value=1, max_value=9),
    name=st.sampled_from(available_schedules()),
)
def test_property_partition_faults_covers_real_fault_lists(
    depth, islands, shards, name
):
    """partition_faults holds the same invariants against concrete
    networks, and cost scheduling keeps injection-site groups whole
    (splitting a site across workers would destroy lane fill)."""
    network = skewed_cone_network(depth=depth, islands=islands)
    faults = all_faults(network)
    parts = partition_faults(network, faults, shards, name)
    flat = [index for part in parts for index in part]
    assert sorted(flat) == list(range(len(faults)))
    assert all(part for part in parts)
    assert len(parts) <= shards
    if name == "cost":
        compiled = compile_network(network)
        shard_of_index = {
            index: shard for shard, part in enumerate(parts) for index in part
        }
        site_shards = {}
        for index, fault in enumerate(faults):
            site = fault_site(compiled, fault)
            site_shards.setdefault(site, set()).add(shard_of_index[index])
        assert all(len(shards_) == 1 for shards_ in site_shards.values())


def test_flat_cost_vector_falls_back_to_interleaved():
    costs = [7] * 12
    assert cost_schedule(costs, 4) == interleaved_schedule(costs, 4)


def test_lpt_keeps_heavy_items_apart():
    """One huge cone next to many tiny ones: the huge item gets its own
    shard instead of dragging a contiguous slice along."""
    costs = [100, 1, 1, 1, 1, 1, 1, 1]
    parts = cost_schedule(costs, 2)
    loads = sorted(sum(costs[index] for index in part) for part in parts)
    assert loads == [7, 100]


def test_zero_cost_items_never_leave_a_shard_empty():
    parts = cost_schedule([5, 0, 0, 0, 0], 3)
    assert_exact_disjoint_cover(parts, 5, 3)


# -- schedule registry contracts -------------------------------------------------------


class TestScheduleRegistry:
    def test_available_schedules_sorted(self):
        assert list(available_schedules()) == sorted(available_schedules())

    def test_unknown_schedule_message_lists_available(self):
        with pytest.raises(ValueError) as excinfo:
            get_schedule("turbo")
        assert str(excinfo.value) == (
            "unknown schedule 'turbo'; available schedules: "
            + ", ".join(available_schedules())
        )

    def test_none_resolves_to_default(self):
        assert get_schedule(None) is SCHEDULES[DEFAULT_SCHEDULE]


# -- shard_bounds regression -----------------------------------------------------------


class TestShardBoundsNeverEmpty:
    def test_zero_faults_yield_no_shards(self):
        """Regression: ``shard_bounds(0, n)`` used to emit one empty
        (0, 0) shard; no worker may ever be handed an empty shard."""
        for shards in (1, 2, 7):
            assert shard_bounds(0, shards) == []

    def test_more_shards_than_faults_yield_singleton_shards(self):
        for count in (1, 2, 5):
            bounds = shard_bounds(count, count + 3)
            assert bounds == [(k, k + 1) for k in range(count)]

    @settings(max_examples=40)
    @given(
        count=st.integers(min_value=0, max_value=200),
        shards=st.integers(min_value=1, max_value=40),
    )
    def test_property_bounds_are_a_nonempty_exact_cover(self, count, shards):
        bounds = shard_bounds(count, shards)
        assert all(hi > lo for lo, hi in bounds)
        covered = [index for lo, hi in bounds for index in range(lo, hi)]
        assert covered == list(range(count))


# -- vector batch coalescing -----------------------------------------------------------


class TestBatchCoalescing:
    def _plans(self, network, schedule="cost"):
        vector = vector_compile(network)
        faults = all_faults(network)
        groups = vector.group_faults(list(enumerate(faults)))
        return vector, faults, groups, vector.plan_batches(groups, schedule)

    @pytest.mark.parametrize("network", FIXED_CIRCUITS, ids=lambda n: n.name)
    def test_plans_cover_every_fault_exactly_once(self, network):
        _vector, faults, groups, plans = self._plans(network)
        planned = [
            index
            for plan in plans
            for _site, _stuck, members in plan
            for index, _fault in members
        ]
        grouped = [
            index for _site, _stuck, members in groups for index, _fault in members
        ]
        assert sorted(planned) == sorted(grouped)

    @pytest.mark.parametrize("network", FIXED_CIRCUITS, ids=lambda n: n.name)
    def test_plans_respect_batch_bound_and_soundness(self, network):
        vector, _faults, _groups, plans = self._plans(network)
        compiled = vector.compiled
        gate_out = compiled._gate_out
        for plan in plans:
            if len(plan) == 1:
                continue
            batch = sum(len(members) for _s, _st, members in plan)
            assert batch <= COALESCE_MAX_BATCH
            sites = {site for site, _stuck, _members in plan}
            union_outs = set()
            for site in sites:
                union_outs.update(
                    gate_out[index] for index in cone_gates(compiled, site)
                )
            # No site may be recomputed by the union cone.
            assert not (sites & union_outs)

    def test_stuck_pair_sites_coalesce_on_the_skewed_network(self):
        """The motivating cases: (a) a stuck-at pair at a gate output
        merges with the cell-fault batch of the driving gate - same
        site, same cone, no block to build; (b) the two spine inputs
        share one *deep* identical cone, so their stuck pairs merge
        cross-site.  The shallow island input pairs must NOT merge: a
        1-gate cone saves one kernel dispatch but pays a whole block
        build, and the cost model prices that as a loss."""
        network = skewed_cone_network(depth=16, islands=6)
        vector, faults, groups, plans = self._plans(network)
        assert len(plans) < len(groups)
        slot_of_net = vector.compiled.slot_of_net
        merged_site_sets = [
            frozenset(site for site, _stuck, _members in plan)
            for plan in plans
            if len(plan) > 1
        ]
        assert merged_site_sets, "no coalesced plan on a stuck-pair-heavy network"
        # (a) same-site merge at a spine gate output (stuck pair + cell
        # faults of the driving gate land in one plan).
        spine_site = slot_of_net["c1"]
        spine_plans = [
            plan
            for plan in plans
            if any(site == spine_site for site, _stuck, _members in plan)
        ]
        assert len(spine_plans) == 1
        kinds = {
            fault.kind
            for _site, _stuck, members in spine_plans[0]
            for _index, fault in members
        }
        assert kinds == {"stuck", "cell"}
        # (b) cross-site merge of the identical-cone spine inputs.
        head_pair = frozenset((slot_of_net["s0"], slot_of_net["u"]))
        assert any(head_pair <= sites for sites in merged_site_sets)
        # Shallow island input pairs stay apart.
        island_pair = frozenset((slot_of_net["t0a"], slot_of_net["t0b"]))
        assert not any(island_pair <= sites for sites in merged_site_sets)

    def test_chain_sites_never_share_a_batch(self):
        """Soundness: a spine site downstream of another spine site
        would be recomputed by the shared cone, clobbering its injected
        rows - such pairs must never coalesce."""
        network = skewed_cone_network(depth=8, islands=0)
        vector, _faults, _groups, plans = self._plans(network)
        compiled = vector.compiled
        for plan in plans:
            sites = [site for site, _stuck, _members in plan]
            for site in sites:
                downstream_outs = {
                    compiled._gate_out[index]
                    for index in cone_gates(compiled, site)
                }
                assert not (downstream_outs & set(sites))

    def test_merged_rows_bit_identical_to_per_group_rows(self):
        """The coalesced pass must reproduce each group's rows exactly."""
        import numpy as np

        network = skewed_cone_network(depth=5, islands=4)
        vector = vector_compile(network)
        faults = all_faults(network)
        patterns = PatternSet.random(network.inputs, 300, seed=31)
        sim_values, mask_row, _count = vector.good_values(
            patterns.env, patterns.mask
        )
        groups = vector.group_faults(list(enumerate(faults)))
        for plan in vector.plan_batches(groups, "cost"):
            if len(plan) == 1:
                continue
            live, rows = vector.merged_difference_rows(sim_values, mask_row, plan)
            merged_of = dict(
                zip(live, rows if rows is not None else [])
            )
            seen = set()
            for group in plan:
                g_live, g_rows = vector.group_difference_rows(
                    sim_values, mask_row, group
                )
                for j, index in enumerate(g_live):
                    if index in merged_of:
                        assert np.array_equal(merged_of[index], g_rows[j])
                        seen.add(index)
                    else:
                        # The merged pass always drops window-inactive
                        # rows; the single-site pass keeps them (all
                        # zero) when most of its batch is active.
                        assert not g_rows[j].any(), index
            assert seen == set(merged_of)

    def test_non_cost_schedules_keep_one_group_per_plan(self):
        network = skewed_cone_network(depth=4, islands=4)
        for name in ("contiguous", "interleaved"):
            _vector, _faults, groups, plans = self._plans(network, name)
            assert plans == [[group] for group in groups]

    def test_plan_batches_rejects_unknown_schedule(self):
        network = and_cone(3)
        vector = vector_compile(network)
        with pytest.raises(ValueError, match="unknown schedule"):
            vector.plan_batches([], "turbo")
