"""Unit tests for the Boolean expression AST."""

import pytest

from repro.logic.expr import (
    FALSE,
    TRUE,
    And,
    Const,
    Expr,
    Not,
    Or,
    Var,
    all_assignments,
    literal_occurrences,
    simplify,
    substitute_occurrence,
    vars_,
)


class TestConstruction:
    def test_var_requires_name(self):
        with pytest.raises(ValueError):
            Var("")

    def test_const_requires_binary(self):
        with pytest.raises(ValueError):
            Const(2)

    def test_nary_flattening(self):
        a, b, c = vars_("a", "b", "c")
        expr = And(And(a, b), c)
        assert len(expr.operands) == 3

    def test_or_flattening(self):
        a, b, c = vars_("a", "b", "c")
        expr = Or(a, Or(b, c))
        assert len(expr.operands) == 3

    def test_operator_overloads(self):
        a, b = vars_("a", "b")
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)

    def test_xor_derivation(self):
        a, b = vars_("a", "b")
        xor = a ^ b
        assert xor.evaluate({"a": 0, "b": 1}) == 1
        assert xor.evaluate({"a": 1, "b": 1}) == 0

    def test_coerce_int_literals(self):
        a = Var("a")
        assert (a & 1).evaluate({"a": 1}) == 1
        assert (a | 0).evaluate({"a": 0}) == 0

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeError):
            Var("a") & "nonsense"

    def test_immutability(self):
        a = Var("a")
        with pytest.raises(AttributeError):
            a.name = "b"


class TestEvaluation:
    def test_simple_and(self):
        a, b = vars_("a", "b")
        expr = a & b
        assert expr.evaluate({"a": 1, "b": 1}) == 1
        assert expr.evaluate({"a": 1, "b": 0}) == 0

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            Var("a").evaluate({})

    def test_non_binary_value_raises(self):
        with pytest.raises(ValueError):
            Var("a").evaluate({"a": 5})

    def test_bits_matches_scalar(self):
        a, b, c = vars_("a", "b", "c")
        expr = (a & b) | ~c
        names = ("a", "b", "c")
        mask = (1 << 8) - 1
        env = {}
        for position, name in enumerate(names):
            bits = 0
            for minterm in range(8):
                if (minterm >> (2 - position)) & 1:
                    bits |= 1 << minterm
            env[name] = bits
        parallel = expr.evaluate_bits(env, mask)
        for minterm, assignment in enumerate(all_assignments(names)):
            assert (parallel >> minterm) & 1 == expr.evaluate(assignment)

    def test_const_bits(self):
        assert TRUE.evaluate_bits({}, 0b111) == 0b111
        assert FALSE.evaluate_bits({}, 0b111) == 0


class TestStructure:
    def test_variables(self):
        expr = (Var("a") & Var("b")) | ~Var("c")
        assert expr.variables() == {"a", "b", "c"}

    def test_substitute(self):
        a, b = vars_("a", "b")
        expr = (a & b).substitute({"a": Const(1)})
        assert simplify(expr) == b

    def test_cofactor(self):
        a, b = vars_("a", "b")
        expr = a & b
        assert simplify(expr.cofactor("a", 0)) == FALSE
        assert simplify(expr.cofactor("a", 1)) == b

    def test_size(self):
        expr = Var("a") & Var("b")
        assert expr.size() == 3

    def test_paper_syntax_round_trip(self):
        from repro.logic.parser import parse_expression

        text = "a*(b+c)+d*e"
        assert parse_expression(text).to_paper_syntax() == text


class TestSimplify:
    def test_and_zero(self):
        assert simplify(Var("a") & FALSE) == FALSE

    def test_and_one(self):
        assert simplify(Var("a") & TRUE) == Var("a")

    def test_or_one(self):
        assert simplify(Var("a") | TRUE) == TRUE

    def test_or_zero(self):
        assert simplify(Var("a") | FALSE) == Var("a")

    def test_double_negation(self):
        assert simplify(~~Var("a")) == Var("a")

    def test_duplicate_removal(self):
        a = Var("a")
        assert simplify(And(a, a)) == a
        assert simplify(Or(a, a)) == a

    def test_empty_and_after_constant_removal(self):
        assert simplify(And(TRUE, TRUE)) == TRUE


class TestOccurrences:
    def test_occurrence_listing(self):
        from repro.logic.parser import parse_expression

        expr = parse_expression("a*(b+c)+d*e")
        assert literal_occurrences(expr) == ("a", "b", "c", "d", "e")

    def test_repeated_variable_occurrences(self):
        from repro.logic.parser import parse_expression

        expr = parse_expression("a*b+a*c")
        assert literal_occurrences(expr) == ("a", "b", "a", "c")

    def test_substitute_single_occurrence(self):
        from repro.logic.parser import parse_expression

        expr = parse_expression("a*b+a*c")
        # Kill only the *first* a: the second product must survive.
        faulty = simplify(substitute_occurrence(expr, 0, Const(0)))
        assert faulty.evaluate({"a": 1, "b": 1, "c": 0}) == 0
        assert faulty.evaluate({"a": 1, "b": 0, "c": 1}) == 1

    def test_substitute_out_of_range(self):
        with pytest.raises(IndexError):
            substitute_occurrence(Var("a"), 3, Const(0))


class TestAllAssignments:
    def test_count_and_order(self):
        rows = list(all_assignments(("a", "b")))
        assert rows == [
            {"a": 0, "b": 0},
            {"a": 0, "b": 1},
            {"a": 1, "b": 0},
            {"a": 1, "b": 1},
        ]

    def test_empty(self):
        assert list(all_assignments(())) == [{}]
