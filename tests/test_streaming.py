"""Tests for confidence-bounded streaming coverage sessions.

Covers the Wilson lower bound (:func:`coverage_lower_bound`), the
incremental consumer (:func:`streaming_coverage` and the
``stop_at_confidence`` mode of :func:`coverage_curve`), and the
rewritten test-length numerics that back them.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.generators import and_cone, domino_carry_chain, skewed_cone_network
from repro.protest import (
    Protest,
    confidence_all_detected,
    coverage_lower_bound,
    detection_probability,
    escape_probability,
    test_length as required_test_length,
    test_length_for_fault as required_length_for_fault,
)
from repro.simulate import (
    LanePatternSet,
    LfsrSource,
    coverage_curve,
    fault_simulate,
    streaming_coverage,
)
from repro.simulate.faultsim import FIRST_DETECTION_CHUNK, windowed_outcomes


class TestCoverageLowerBound:
    def test_empty_universe_is_vacuously_covered(self):
        assert coverage_lower_bound(0, 0) == 1.0

    def test_nothing_detected_bounds_at_zero(self):
        assert coverage_lower_bound(0, 50) == pytest.approx(0.0, abs=1e-12)

    def test_full_detection_stays_below_one(self):
        bound = coverage_lower_bound(40, 40, confidence=0.99)
        assert 0.0 < bound < 1.0

    def test_bound_below_empirical_coverage(self):
        for detected, total in [(3, 10), (9, 10), (50, 64), (199, 200)]:
            bound = coverage_lower_bound(detected, total, confidence=0.95)
            assert bound <= detected / total

    def test_bound_tightens_with_more_evidence(self):
        # Same empirical coverage, larger sample: the bound must rise.
        small = coverage_lower_bound(9, 10, confidence=0.99)
        large = coverage_lower_bound(900, 1000, confidence=0.99)
        assert large > small

    def test_known_wilson_value(self):
        # One-sided 97.5% (z = 1.96): Wilson lower bound for 9-of-10
        # is the textbook two-sided-95% value ~0.59585.
        bound = coverage_lower_bound(9, 10, confidence=0.975)
        assert bound == pytest.approx(0.59585, abs=5e-4)

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_confidence_outside_open_interval(self, confidence):
        with pytest.raises(ValueError, match="confidence"):
            coverage_lower_bound(1, 2, confidence=confidence)

    def test_rejects_detected_outside_range(self):
        with pytest.raises(ValueError):
            coverage_lower_bound(-1, 5)
        with pytest.raises(ValueError):
            coverage_lower_bound(6, 5)

    @given(
        total=st.integers(min_value=1, max_value=500),
        data=st.data(),
        confidence=st.sampled_from([0.9, 0.95, 0.99, 0.999]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_monotone_in_detected_and_in_range(
        self, total, data, confidence
    ):
        detected = data.draw(st.integers(min_value=0, max_value=total - 1))
        lower = coverage_lower_bound(detected, total, confidence=confidence)
        upper = coverage_lower_bound(detected + 1, total, confidence=confidence)
        assert 0.0 <= lower <= 1.0
        assert 0.0 <= upper <= 1.0
        assert upper >= lower
        assert upper <= (detected + 1) / total


class TestStreamingCoverageSession:
    def _session(self, **overrides):
        network = domino_carry_chain(10)
        source = LfsrSource(
            network.inputs, 4 * FIRST_DETECTION_CHUNK, seed=7
        )
        keywords = dict(target_coverage=0.7, confidence=0.95)
        keywords.update(overrides)
        return network, source, streaming_coverage(network, source, **keywords)

    def test_stops_on_window_boundary(self):
        _, source, session = self._session()
        assert (
            session.pattern_count % FIRST_DETECTION_CHUNK == 0
            or session.pattern_count == source.count
        )

    def test_satisfied_session_clears_target(self):
        _, _, session = self._session()
        assert session.satisfied
        assert session.lower_bound >= session.target_coverage
        assert session.coverage >= session.lower_bound

    def test_curve_coverage_is_monotone_and_bound_consistent(self):
        _, _, session = self._session()
        coverages = [coverage for _, coverage in session.curve]
        assert coverages == sorted(coverages)
        counts = [count for count, _ in session.curve]
        assert counts == sorted(counts)
        assert counts[-1] == session.pattern_count

    def test_detected_weight_matches_fault_simulation_of_prefix(self):
        network, source, session = self._session()
        prefix = source.slice(0, session.pattern_count)
        result = fault_simulate(network, prefix)
        assert len(result.detected) == session.detected_weight
        assert result.coverage == pytest.approx(session.coverage)

    def test_unreachable_target_exhausts_budget(self):
        network = and_cone(3)
        source = LfsrSource(network.inputs, 2 * FIRST_DETECTION_CHUNK, seed=3)
        session = streaming_coverage(
            network, source, target_coverage=1.0, confidence=0.999999
        )
        assert not session.satisfied
        assert session.exhausted
        assert session.lower_bound < session.target_coverage

    def test_small_universe_stops_once_every_fault_fell(self):
        # and_cone(2) has few faults: even full detection cannot clear a
        # 0.999999 confidence demand, and the session must not keep
        # burning budget once no fault remains.
        network = and_cone(2)
        source = LfsrSource(network.inputs, 64 * FIRST_DETECTION_CHUNK, seed=3)
        session = streaming_coverage(
            network, source, target_coverage=0.999, confidence=0.999999
        )
        if not session.satisfied:
            assert session.coverage == pytest.approx(1.0)
            assert session.pattern_count < session.pattern_budget

    def test_empty_fault_list_is_vacuous(self):
        network = and_cone(2)
        source = LfsrSource(network.inputs, FIRST_DETECTION_CHUNK, seed=1)
        session = streaming_coverage(network, source, faults=[])
        assert session.satisfied
        assert session.pattern_count == 0
        assert session.coverage == 1.0

    @pytest.mark.parametrize("target", [0.0, -0.1, 1.5])
    def test_rejects_bad_target(self, target):
        network, source, _ = None, None, None
        network = and_cone(2)
        source = LfsrSource(network.inputs, 64, seed=1)
        with pytest.raises(ValueError, match="target_coverage"):
            streaming_coverage(network, source, target_coverage=target)

    @pytest.mark.parametrize("confidence", [0.0, 1.0])
    def test_rejects_bad_confidence(self, confidence):
        network = and_cone(2)
        source = LfsrSource(network.inputs, 64, seed=1)
        with pytest.raises(ValueError, match="confidence"):
            streaming_coverage(network, source, confidence=confidence)

    def test_unknown_engine_uses_registry_error(self):
        network = and_cone(2)
        source = LfsrSource(network.inputs, 64, seed=1)
        with pytest.raises(ValueError, match="unknown engine"):
            streaming_coverage(network, source, engine="bogus")

    def test_format_summary_mentions_verdict(self):
        _, _, session = self._session()
        text = session.format_summary()
        assert "confidence target met" in text
        assert f"{session.pattern_count} patterns" in text

    def test_collapse_preserves_stopping_point(self):
        network, source, session = self._session()
        collapsed = streaming_coverage(
            network,
            source,
            target_coverage=0.7,
            confidence=0.95,
            collapse="on",
        )
        assert collapsed.collapsed_classes is not None
        assert collapsed.pattern_count == session.pattern_count
        assert collapsed.satisfied == session.satisfied
        assert collapsed.total_weight == session.total_weight
        assert collapsed.detected_weight == session.detected_weight

    @given(
        seed=st.integers(min_value=1, max_value=2**16),
        target=st.sampled_from([0.5, 0.7, 0.9, 0.95]),
        confidence=st.sampled_from([0.9, 0.95, 0.99]),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_session_invariants(self, seed, target, confidence):
        network = skewed_cone_network(depth=5, islands=3)
        source = LfsrSource(
            network.inputs, 6 * FIRST_DETECTION_CHUNK, seed=seed
        )
        session = streaming_coverage(
            network,
            source,
            target_coverage=target,
            confidence=confidence,
        )
        # Stops only at a window boundary or at the end of the budget.
        assert (
            session.pattern_count % FIRST_DETECTION_CHUNK == 0
            or session.pattern_count == source.count
        )
        # Never claims satisfaction below the target.
        if session.satisfied:
            assert session.lower_bound >= target
        else:
            assert session.lower_bound < target
        assert session.coverage >= session.lower_bound
        assert 0 <= session.detected_weight <= session.total_weight
        coverages = [coverage for _, coverage in session.curve]
        assert coverages == sorted(coverages)


class TestWindowBoundarySeam:
    """``on_window`` - the per-window-boundary callback the session
    plugs into the engines' batched window cores."""

    def _run(self, engine, stop_after=None):
        # Deep skewed cones keep faults live across several windows, so
        # the callback genuinely fires more than once.
        network = skewed_cone_network(depth=6, islands=4)
        source = LfsrSource(network.inputs, 4 * FIRST_DETECTION_CHUNK, seed=5)
        faults = network.enumerate_faults()
        boundaries = []

        def on_window(consumed, covered_weight):
            boundaries.append((consumed, covered_weight))
            return stop_after is None or len(boundaries) < stop_after

        outcomes = windowed_outcomes(
            network, source, faults, FIRST_DETECTION_CHUNK,
            engine=engine, on_window=on_window,
        )
        return source, faults, boundaries, outcomes

    @pytest.mark.parametrize("engine", ["compiled", "interpreted", "vector"])
    def test_called_at_every_window_boundary(self, engine):
        source, faults, boundaries, outcomes = self._run(engine)
        # Exactly the pinned grid, one call per consumed window...
        assert [consumed for consumed, _ in boundaries] == [
            FIRST_DETECTION_CHUNK * k for k in range(1, len(boundaries) + 1)
        ]
        covered = [weight for _, weight in boundaries]
        assert covered == sorted(covered)
        # ...and the run only ends at budget exhaustion or full
        # retirement - the boundary where the last active fault fell is
        # still reported (the session samples its curve there).
        assert (
            boundaries[-1][0] == source.count
            or covered[-1] == sum(1 for o in outcomes if o is not None)
        )
        if boundaries[-1][0] < source.count:
            assert all(outcome is not None for outcome in outcomes)

    @pytest.mark.parametrize("engine", ["compiled", "interpreted", "vector"])
    def test_returning_false_stops_the_run(self, engine):
        source, faults, boundaries, outcomes = self._run(engine, stop_after=2)
        assert len(boundaries) == 2
        # Faults first detected beyond the consumed prefix come back None.
        consumed = boundaries[-1][0]
        for outcome in outcomes:
            assert outcome is None or outcome[0] < consumed

    def test_engines_see_identical_boundaries(self):
        reference = self._run("interpreted")[2]
        for engine in ("compiled", "vector"):
            assert self._run(engine)[2] == reference

    def test_seam_turns_on_retirement(self):
        # With the callback provided, detected faults retire (count
        # pinned to 1), exactly as under stop_at_first_detection.
        _, _, _, outcomes = self._run("compiled")
        assert all(
            outcome is None or outcome[1] == 1 for outcome in outcomes
        )


class TestNonWordAlignedStreaming:
    """Sources consumed at window widths that are neither multiples of
    64 nor divisors of the budget must stay bit-exact."""

    BUDGET = 3 * FIRST_DETECTION_CHUNK + 11

    @pytest.mark.parametrize("width", [37, 100, 129])
    def test_windows_match_materialised_slices(self, width):
        network = domino_carry_chain(10)
        source = LfsrSource(network.inputs, self.BUDGET, seed=13)
        whole = LfsrSource(network.inputs, self.BUDGET, seed=13).materialise()
        consumed = 0
        for start, window in source.windows(width):
            assert start == consumed
            expected = whole.slice(start, min(start + width, self.BUDGET))
            assert window.count == expected.count
            assert dict(window.env) == dict(expected.env)
            consumed += window.count
        assert consumed == self.BUDGET

    @pytest.mark.parametrize("width", [37, 100])
    @pytest.mark.parametrize("engine", ["compiled", "vector"])
    def test_windowed_outcomes_on_odd_grid_match_whole_set(self, width, engine):
        network = domino_carry_chain(10)
        source = LfsrSource(network.inputs, self.BUDGET, seed=13)
        faults = network.enumerate_faults()
        reference = windowed_outcomes(
            network, source.materialise(), faults, self.BUDGET,
            engine="interpreted",
        )
        assert windowed_outcomes(
            network, source, faults, width, engine=engine,
        ) == reference

    def test_non_aligned_slice_is_lane_exact(self):
        network = domino_carry_chain(10)
        source = LfsrSource(network.inputs, self.BUDGET, seed=13)
        whole = source.materialise()
        window = source.slice(37, 137)
        assert isinstance(window, LanePatternSet)
        assert dict(window.env) == dict(whole.slice(37, 137).env)


class TestLanePatternSetFeed:
    """Source windows feed the vector core as lane words - the big-int
    env only exists if a serial engine asks for it."""

    def test_slice_returns_lane_rows_without_env(self):
        network = domino_carry_chain(10)
        source = LfsrSource(network.inputs, 512, seed=3)
        window = source.slice(0, 256)
        assert isinstance(window, LanePatternSet)
        assert window._env is None  # derived lazily, not at generation
        assert window.lane_rows.shape == (len(network.inputs), 4)

    def test_vector_engine_never_materialises_the_env(self, monkeypatch):
        import repro.simulate.logicsim as logicsim

        network = domino_carry_chain(10)
        source = LfsrSource(network.inputs, 512, seed=3)
        faults = network.enumerate_faults()

        def poisoned_env(self):
            raise AssertionError("vector consumer touched the big-int env")

        monkeypatch.setattr(
            logicsim.LanePatternSet, "env", property(poisoned_env)
        )
        result = fault_simulate(network, source, faults, engine="vector")
        assert result.pattern_count == 512

    def test_lazy_env_matches_lane_rows(self):
        from repro.simulate.logicsim import pack_words

        network = domino_carry_chain(10)
        window = LfsrSource(network.inputs, 512, seed=3).slice(64, 293)
        for row, name in enumerate(window.names):
            assert (
                pack_words(window.env[name], window.count)
                == window.lane_rows[row]
            ).all()


class TestLfsrSequentialResume:
    """Sequential windows resume the advanced bank; random access stays
    positionally exact (sharded workers jump to their own windows)."""

    def test_sequential_windows_resume_the_bank(self):
        network = domino_carry_chain(10)
        source = LfsrSource(network.inputs, 1024, seed=7)
        first = source.slice(0, 256)
        assert source._resume is not None and source._resume[0] == 4
        follow = source.slice(256, 512)  # resume hit: bank is at word 4
        fresh = LfsrSource(network.inputs, 1024, seed=7)
        assert dict(follow.env) == dict(fresh.slice(256, 512).env)

    def test_random_access_after_streaming_is_exact(self):
        network = domino_carry_chain(10)
        source = LfsrSource(network.inputs, 1024, seed=7)
        for _start, _window in source.windows(FIRST_DETECTION_CHUNK):
            pass  # stream the whole budget, leaving the bank advanced
        fresh = LfsrSource(network.inputs, 1024, seed=7)
        again = source.slice(128, 384)  # jump back mid-stream
        assert dict(again.env) == dict(fresh.slice(128, 384).env)

    def test_streamed_windows_identical_to_fresh_jumps(self):
        network = domino_carry_chain(10)
        streamed = LfsrSource(network.inputs, 1024, seed=7)
        windows = list(streamed.windows(FIRST_DETECTION_CHUNK))
        for start, window in windows:
            fresh = LfsrSource(network.inputs, 1024, seed=7)
            assert dict(window.env) == dict(
                fresh.slice(start, start + window.count).env
            )


class TestStreamingJobs:
    """``jobs`` is validated everywhere and threads to the sharded
    session path."""

    @pytest.mark.parametrize("engine", ["compiled", "interpreted", "vector"])
    def test_serial_engines_validate_jobs(self, engine):
        network = and_cone(2)
        source = LfsrSource(network.inputs, 64, seed=1)
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            streaming_coverage(network, source, engine=engine, jobs=0)

    @pytest.mark.parametrize("engine", ["sharded", "sharded+vector"])
    def test_sharded_engines_validate_jobs(self, engine):
        network = and_cone(2)
        source = LfsrSource(network.inputs, 64, seed=1)
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            streaming_coverage(network, source, engine=engine, jobs=0)

    def test_explicit_jobs_accepted_on_serial_engines(self):
        network = domino_carry_chain(10)
        source = LfsrSource(network.inputs, 2 * FIRST_DETECTION_CHUNK, seed=7)
        session = streaming_coverage(
            network, source, target_coverage=0.7, confidence=0.95, jobs=3
        )
        assert session.pattern_count > 0


class TestShardedSessionFanOut:
    """``engine="sharded"``/``"sharded+vector"`` genuinely serve the
    session from the window-synchronous worker pool - bit-identical to
    the single-process consumer."""

    @pytest.mark.parametrize("engine", ["sharded", "sharded+vector"])
    def test_pooled_session_matches_serial(self, engine, monkeypatch):
        from repro.simulate import sharded as sharded_module

        calls = {}
        original = sharded_module._coverage_sharded_outcomes

        def spy(*args, **kwargs):
            outcome = original(*args, **kwargs)
            calls["pooled"] = outcome is not None
            return outcome

        monkeypatch.setattr(sharded_module, "MIN_POOL_WORK", 0)
        monkeypatch.setattr(
            sharded_module, "_coverage_sharded_outcomes", spy
        )
        network = skewed_cone_network(depth=6, islands=4)
        budget = 4 * FIRST_DETECTION_CHUNK
        pooled = streaming_coverage(
            network,
            LfsrSource(network.inputs, budget, seed=5),
            target_coverage=0.7,
            confidence=0.95,
            engine=engine,
            jobs=2,
        )
        serial = streaming_coverage(
            network,
            LfsrSource(network.inputs, budget, seed=5),
            target_coverage=0.7,
            confidence=0.95,
        )
        assert calls["pooled"], "session silently downgraded to one process"
        assert pooled.pattern_count == serial.pattern_count
        assert pooled.detected_weight == serial.detected_weight
        assert pooled.satisfied == serial.satisfied
        assert pooled.curve == serial.curve
        assert pooled.lower_bound == serial.lower_bound


class TestBudgetBoundaryVerdict:
    """A session whose final window detects every remaining fault
    exactly at the budget boundary is reported as a too-small universe,
    not as an exhausted budget."""

    def _boundary_session(self):
        # One-window budget: everything detectable falls in the very
        # last (and only) window, so pattern_count == pattern_budget
        # while no active fault remains.
        network = and_cone(2)
        source = LfsrSource(network.inputs, FIRST_DETECTION_CHUNK, seed=3)
        return streaming_coverage(
            network, source, target_coverage=0.999, confidence=0.999999
        )

    def test_full_detection_at_budget_boundary_not_budget_exhausted(self):
        session = self._boundary_session()
        assert session.pattern_count == session.pattern_budget  # the trap
        assert session.detected_weight == session.total_weight
        assert not session.satisfied
        summary = session.format_summary()
        assert "every fault detected" in summary
        assert "budget" not in summary.splitlines()[0]

    def test_genuinely_exhausted_budget_still_reported(self):
        network = domino_carry_chain(14)
        source = LfsrSource(network.inputs, FIRST_DETECTION_CHUNK, seed=2)
        session = streaming_coverage(
            network, source, target_coverage=1.0, confidence=0.999999
        )
        if session.detected_weight < session.total_weight:
            assert "budget of" in session.format_summary()


class TestCoverageCurveStopAtConfidence:
    def test_curve_matches_streaming_session(self):
        network = skewed_cone_network(depth=6, islands=4)
        source = LfsrSource(network.inputs, 4 * FIRST_DETECTION_CHUNK, seed=7)
        session = streaming_coverage(
            network, source, target_coverage=0.7, confidence=0.95
        )
        curve = coverage_curve(
            network,
            source,
            stop_at_confidence=0.95,
            target_coverage=0.7,
        )
        assert curve == session.curve

    def test_plain_curve_unchanged_without_stop(self):
        network = and_cone(3)
        source = LfsrSource(network.inputs, 128, seed=9)
        full = coverage_curve(network, source.materialise(), points=4)
        streamed = coverage_curve(network, source, points=4)
        assert streamed == full


class TestTestLengthNumerics:
    def test_tiny_probability_stays_finite(self):
        n = required_test_length({"f": 1e-18}, 0.999)
        assert math.isfinite(n)
        exact = math.ceil(math.log1p(-0.999) / math.log1p(-1e-18))
        assert abs(n - exact) / exact < 1e-12

    def test_single_fault_matches_closed_form(self):
        for p in (1e-18, 1e-12, 1e-6, 0.01, 0.5):
            n = required_test_length({"f": p}, 0.99)
            closed = required_length_for_fault(p, 0.99)
            # Beyond 2**53 the float return type rounds the integer
            # pattern count, so compare with relative tolerance.
            assert n >= closed or abs(n - closed) / closed < 1e-12
            assert confidence_all_detected({"f": p}, n) >= 0.99 - 1e-12

    def test_mixed_magnitudes(self):
        probabilities = {"easy": 0.25, "hard": 1e-16, "mid": 1e-4}
        n = required_test_length(probabilities, 0.99)
        assert math.isfinite(n)
        assert confidence_all_detected(probabilities, n) >= 0.99 - 1e-12

    def test_moderate_mix_is_minimal(self):
        # At this scale n - 1 is exactly representable, so the binary
        # search must land on the smallest sufficient length.
        probabilities = {"easy": 0.25, "hard": 0.003, "mid": 0.01}
        n = required_test_length(probabilities, 0.99)
        assert confidence_all_detected(probabilities, n) >= 0.99
        assert confidence_all_detected(probabilities, n - 1) < 0.99

    def test_certain_fault_needs_one_pattern(self):
        assert required_test_length({"f": 1.0}, 0.999) == 1
        assert escape_probability(1.0, 1) == 0.0
        assert escape_probability(1.0, 0) == 1.0

    def test_detection_probability_complements_escape(self):
        for p in (1e-18, 1e-9, 0.1, 0.999):
            for length in (1, 100, 10**6):
                detect = detection_probability(p, length)
                escape = escape_probability(p, length)
                assert detect == pytest.approx(1.0 - escape, abs=1e-12)
                assert 0.0 <= detect <= 1.0

    def test_tiny_probability_detection_not_rounded_to_zero(self):
        # The old 1-(1-p)**N path rounded (1-p) to 1.0 for p <~ 1e-16.
        assert detection_probability(1e-18, 10**15) > 0.0
        assert escape_probability(1e-18, 10**15) < 1.0

    @given(
        p=st.floats(min_value=1e-18, max_value=0.999),
        confidence=st.floats(min_value=0.5, max_value=0.9999),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_length_is_minimal(self, p, confidence):
        n = required_length_for_fault(p, confidence)
        assert math.isfinite(n) and n >= 1
        assert detection_probability(p, n) >= confidence - 1e-12


class TestProtestStreamingFacade:
    def test_streaming_test_length_runs_end_to_end(self):
        network = domino_carry_chain(10)
        protest = Protest(network)
        session = protest.streaming_test_length(
            target_coverage=0.7,
            confidence=0.95,
            max_patterns=4 * FIRST_DETECTION_CHUNK,
            seed=7,
        )
        assert session.satisfied
        assert session.network_name == network.name
        assert session.pattern_budget == 4 * FIRST_DETECTION_CHUNK

    def test_streaming_on_wide_network(self):
        # domino_carry_chain(20) has 41 inputs - more than one lane word
        # of generator width, the regime the old session code crashed in.
        network = domino_carry_chain(20)
        protest = Protest(network)
        session = protest.streaming_test_length(
            target_coverage=0.5,
            confidence=0.9,
            max_patterns=2 * FIRST_DETECTION_CHUNK,
        )
        assert len(network.inputs) > 40
        assert session.pattern_count > 0
        assert session.detected_weight > 0

    def test_unknown_source_uses_registry_error(self):
        network = and_cone(2)
        protest = Protest(network)
        with pytest.raises(ValueError, match="unknown pattern source"):
            protest.streaming_test_length(source="bogus")
