"""Tests for the PROTEST probabilistic testability analyser."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.generators import and_cone, domino_carry_chain
from repro.netlist import CellFactory, Network
from repro.protest import (
    Protest,
    confidence_all_detected,
    detection_probabilities,
    escape_probability,
    exact_detection_probabilities,
    exact_signal_probabilities,
    expected_coverage,
    hardest_faults,
    monte_carlo_signal_probabilities,
    optimize_input_probabilities,
    signal_probabilities,
    test_length as required_test_length,
    test_length_for_fault as required_length_for_fault,
    topological_signal_probabilities,
)
from repro.simulate import PatternSet, fault_simulate


class TestSignalProbabilities:
    def test_exact_known_values(self):
        network = and_cone(3)
        exact = exact_signal_probabilities(network)
        assert exact["w"] == pytest.approx(0.125)
        assert exact["z"] == pytest.approx(1 - (1 - 0.125) * 0.5)

    def test_weighted_inputs(self):
        network = and_cone(2)
        exact = exact_signal_probabilities(
            network, {"a0": 0.9, "a1": 0.9, "bypass": 0.0}
        )
        assert exact["z"] == pytest.approx(0.81)

    def test_topological_exact_without_reconvergence(self):
        network = domino_carry_chain(3)
        exact = exact_signal_probabilities(network)
        topo = topological_signal_probabilities(network)
        for net in exact:
            assert topo[net] == pytest.approx(exact[net], abs=1e-12)

    def test_topological_biased_with_reconvergence(self):
        factory = CellFactory("domino-CMOS")
        network = Network("reconv")
        network.add_input("a")
        network.add_input("b")
        network.add_gate("g1", factory.and_gate(2), {"i1": "a", "i2": "b"}, "n1")
        # z = n1 + a: reconvergent on a.
        network.add_gate("g2", factory.or_gate(2), {"i1": "n1", "i2": "a"}, "z")
        network.mark_output("z")
        exact = exact_signal_probabilities(network)
        topo = topological_signal_probabilities(network)
        assert exact["z"] == pytest.approx(0.5)  # z = a
        assert topo["z"] != pytest.approx(0.5)  # independence bias

    def test_monte_carlo_converges(self):
        network = domino_carry_chain(3)
        exact = exact_signal_probabilities(network)
        monte = monte_carlo_signal_probabilities(network, samples=16384)
        for net in exact:
            assert monte[net] == pytest.approx(exact[net], abs=0.02)

    def test_dispatch(self):
        network = and_cone(2)
        assert signal_probabilities(network, method="exact") == exact_signal_probabilities(network)
        with pytest.raises(ValueError):
            signal_probabilities(network, method="psychic")

    def test_zero_samples_raises(self):
        """Regression: samples=0 used to divide by zero (and negative
        counts produced empty, silently meaningless estimates)."""
        network = and_cone(2)
        for samples in (0, -4):
            with pytest.raises(ValueError, match="samples"):
                monte_carlo_signal_probabilities(network, samples=samples)

    def test_one_sample_is_valid(self):
        network = and_cone(2)
        estimates = monte_carlo_signal_probabilities(network, samples=1)
        assert all(value in (0.0, 1.0) for value in estimates.values())


class TestDetectionProbabilities:
    def test_exact_matches_fault_simulation_frequency(self):
        network = and_cone(4)
        faults = network.enumerate_faults()
        exact = exact_detection_probabilities(network, faults)
        patterns = PatternSet.exhaustive(network.inputs)
        result = fault_simulate(network, patterns)
        for fault in faults:
            label = fault.describe()
            assert exact[label] == pytest.approx(
                result.detection_counts.get(label, 0) / patterns.count
            )

    def test_cone_width_halves_detection(self):
        # The AND-open class needs all inputs 1 and bypass 0.
        for width in (3, 4, 5):
            network = and_cone(width)
            exact = exact_detection_probabilities(network, network.enumerate_faults())
            hardest = min(exact.values())
            assert hardest == pytest.approx(2.0 ** -(width + 1))

    def test_topological_estimates_bounded(self):
        network = domino_carry_chain(4)
        estimates = detection_probabilities(network, method="topological")
        assert all(0.0 <= p <= 1.0 for p in estimates.values())

    def test_monte_carlo_zero_samples_raises(self):
        """Regression: samples=0 used to divide by zero."""
        from repro.protest import monte_carlo_detection_probabilities

        network = and_cone(2)
        faults = network.enumerate_faults()
        for samples in (0, -1):
            with pytest.raises(ValueError, match="samples"):
                monte_carlo_detection_probabilities(network, faults, samples=samples)

    def test_monte_carlo_one_sample_is_valid(self):
        from repro.protest import monte_carlo_detection_probabilities

        network = and_cone(2)
        faults = network.enumerate_faults()
        estimates = monte_carlo_detection_probabilities(network, faults, samples=1)
        assert all(value in (0.0, 1.0) for value in estimates.values())

    def test_estimators_reject_colliding_fault_labels(self):
        """Distinct faults sharing a label must raise here too, not just
        in fault_simulate - a silent dict merge would shrink the fault
        universe under test_length/hardest_faults."""
        from repro.netlist import NetworkFault
        from repro.protest import monte_carlo_detection_probabilities

        network = and_cone(3)
        colliding = [
            NetworkFault.stuck_at("a0", 0),
            NetworkFault(kind="stuck", net="a1", value=0, label="s0-a0"),
        ]
        with pytest.raises(ValueError, match="shared by two distinct"):
            monte_carlo_detection_probabilities(network, colliding, samples=16)
        with pytest.raises(ValueError, match="shared by two distinct"):
            exact_detection_probabilities(network, colliding)
        with pytest.raises(ValueError, match="shared by two distinct"):
            detection_probabilities(network, colliding, method="topological")

    def test_estimators_reject_ghost_faults(self):
        """A fault on a net the network does not drive must raise, not
        silently score detection probability 0.0."""
        from repro.netlist import NetworkFault
        from repro.protest import monte_carlo_detection_probabilities

        network = and_cone(3)
        ghost = [NetworkFault.stuck_at("ghost", 1)]
        with pytest.raises(ValueError, match="cannot be injected"):
            monte_carlo_detection_probabilities(network, ghost, samples=16)
        with pytest.raises(ValueError, match="cannot be injected"):
            exact_detection_probabilities(network, ghost)
        with pytest.raises(ValueError, match="cannot be injected"):
            detection_probabilities(network, ghost, method="topological")


class TestTestLength:
    def test_per_fault_formula(self):
        # 1-(1-p)^N >= c  =>  N >= log(1-c)/log(1-p)
        assert required_length_for_fault(0.5, 0.999) == 10
        assert required_length_for_fault(1.0, 0.999) == 1
        assert math.isinf(required_length_for_fault(0.0, 0.999))

    def test_escape_probability(self):
        assert escape_probability(0.5, 3) == pytest.approx(0.125)

    def test_whole_test_longer_than_per_fault(self):
        probabilities = {f"f{k}": 0.01 for k in range(50)}
        per_fault = required_test_length(probabilities, 0.99, per_fault=True)
        whole = required_test_length(probabilities, 0.99)
        assert whole >= per_fault

    def test_confidence_monotone_in_length(self):
        probabilities = {"f1": 0.1, "f2": 0.02}
        confidences = [confidence_all_detected(probabilities, n) for n in (10, 50, 250)]
        assert confidences == sorted(confidences)

    def test_expected_coverage(self):
        assert expected_coverage({"f": 1.0}, 1) == pytest.approx(1.0)
        assert expected_coverage({}, 5) == 1.0

    def test_hardest_faults_sorted(self):
        ranked = hardest_faults({"easy": 0.9, "hard": 0.001, "mid": 0.1}, count=2)
        assert [label for label, _ in ranked] == ["hard", "mid"]

    def test_undetectable_gives_infinite_length(self):
        assert math.isinf(required_test_length({"f": 0.0}, 0.9))

    def test_validation_against_simulation(self):
        # With the computed length, random tests should indeed catch all
        # faults in most trials.
        network = and_cone(4)
        exact = exact_detection_probabilities(network, network.enumerate_faults())
        length = int(required_test_length(exact, 0.99))
        hits = 0
        trials = 20
        for seed in range(trials):
            patterns = PatternSet.random(network.inputs, length, seed=seed)
            if fault_simulate(network, patterns).coverage == 1.0:
                hits += 1
        assert hits / trials >= 0.9


class TestOptimization:
    def test_cone_gain(self):
        network = and_cone(8)
        result = optimize_input_probabilities(network)
        assert result.optimized_min_detection > result.uniform_min_detection
        assert result.test_length_ratio > 5.0

    def test_probabilities_stay_in_grid_bounds(self):
        network = and_cone(6)
        result = optimize_input_probabilities(network)
        assert all(0.0 < p < 1.0 for p in result.optimized_probabilities.values())

    def test_summary_renders(self):
        network = and_cone(4)
        result = optimize_input_probabilities(network)
        text = result.format_summary()
        assert "test length" in text


class TestFacade:
    def test_analysis_report(self):
        network = domino_carry_chain(3)
        protest = Protest(network)
        report = protest.analyse(confidence=0.99)
        assert report.required_test_length > 0
        assert len(report.detection_probabilities) == len(protest.faults)
        assert "PROTEST report" in report.format_summary()

    def test_validate_runs_fault_simulation(self):
        network = domino_carry_chain(3)
        protest = Protest(network)
        result = protest.validate(count=128)
        assert result.pattern_count == 128

    def test_generated_patterns_use_distribution(self):
        network = and_cone(4)
        protest = Protest(network)
        patterns = protest.generate_patterns(
            2048, probs={name: 0.9 for name in network.inputs}
        )
        ones = patterns.env["a0"].bit_count() / patterns.count
        assert ones == pytest.approx(0.9, abs=0.04)


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.01, max_value=0.99),
    st.floats(min_value=0.5, max_value=0.999),
)
def test_test_length_meets_confidence(p, confidence):
    """Property: the computed per-fault length actually achieves the
    demanded confidence, and one fewer pattern does not."""
    length = required_length_for_fault(p, confidence)
    assert 1.0 - (1.0 - p) ** length >= confidence - 1e-12
    if length > 1:
        assert 1.0 - (1.0 - p) ** (length - 1) < confidence


class TestProtocol:
    def test_format_protocol_lists_every_fault(self):
        from repro.circuits.generators import and_cone

        network = and_cone(4)
        protest = Protest(network)
        report = protest.analyse(confidence=0.99)
        text = report.format_protocol()
        assert "protocol of necessary test length" in text
        # one line per fault plus header/footer
        assert len(text.splitlines()) == len(protest.faults) + 3
        assert "whole test" in text
