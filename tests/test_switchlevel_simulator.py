"""Tests for the charge-aware switch-level simulator."""

import pytest

from repro.logic.values import ONE, X, ZERO
from repro.switchlevel.network import (
    VDD,
    VSS,
    DeviceType,
    NodeKind,
    SwitchCircuit,
)
from repro.switchlevel.simulator import SimulationError, SwitchSimulator


def inverter() -> SwitchCircuit:
    circuit = SwitchCircuit("inv")
    circuit.add_port("a")
    circuit.add_internal("z")
    circuit.add_switch("p", DeviceType.PMOS, "a", VDD, "z")
    circuit.add_switch("n", DeviceType.NMOS, "a", "z", VSS)
    circuit.mark_output("z")
    return circuit


class TestBasicOperation:
    def test_inverter(self):
        sim = SwitchSimulator(inverter())
        assert sim.step({"a": 0})["z"] == ONE
        assert sim.step({"a": 1})["z"] == ZERO

    def test_x_input_gives_x(self):
        sim = SwitchSimulator(inverter())
        assert sim.step({"a": X})["z"] == X

    def test_missing_port_raises(self):
        sim = SwitchSimulator(inverter())
        with pytest.raises(SimulationError):
            sim.step({})

    def test_unknown_port_raises(self):
        sim = SwitchSimulator(inverter())
        with pytest.raises(SimulationError):
            sim.step({"a": 0, "ghost": 1})

    def test_inverter_chain_settles_in_one_step(self):
        circuit = SwitchCircuit("chain")
        circuit.add_port("a")
        previous = "a"
        for k in range(3):
            node = circuit.add_internal(f"z{k}")
            circuit.add_switch(f"p{k}", DeviceType.PMOS, previous, VDD, node)
            circuit.add_switch(f"n{k}", DeviceType.NMOS, previous, node, VSS)
            previous = node
        circuit.mark_output("z2")
        sim = SwitchSimulator(circuit)
        assert sim.step({"a": 0})["z2"] == ONE  # odd number of inversions
        assert sim.step({"a": 1})["z2"] == ZERO


class TestChargeRetention:
    def test_floating_node_retains_value(self):
        circuit = SwitchCircuit("latchy")
        circuit.add_port("en")
        circuit.add_port("d")
        circuit.add_internal("s")
        circuit.add_switch("pass", DeviceType.NMOS, "en", "d", "s")
        circuit.mark_output("s")
        sim = SwitchSimulator(circuit, decay_steps=0)
        sim.step({"en": 1, "d": 1})
        assert sim.value("s") == ONE
        sim.step({"en": 0, "d": 0})
        assert sim.value("s") == ONE  # isolated: retains charge

    def test_a1_decay(self):
        circuit = SwitchCircuit("decay")
        circuit.add_port("en")
        circuit.add_port("d")
        circuit.add_internal("s")
        circuit.add_switch("pass", DeviceType.NMOS, "en", "d", "s")
        sim = SwitchSimulator(circuit, decay_steps=3)
        sim.step({"en": 1, "d": 1})
        for _ in range(2):
            sim.step({"en": 0, "d": 0})
            assert sim.value("s") == ONE
        sim.step({"en": 0, "d": 0})
        assert sim.value("s") == ZERO  # A1: charge lost after 3 floating steps

    def test_charge_sharing_dominated_by_large_node(self):
        circuit = SwitchCircuit("share")
        circuit.add_port("en")
        big = circuit.add_internal("big", capacitance=1.0)
        small = circuit.add_internal("small", capacitance=0.01)
        circuit.add_switch("t", DeviceType.NMOS, "en", big, small)
        circuit.add_switch("chg", DeviceType.PMOS, "en", VDD, big)
        sim = SwitchSimulator(circuit, decay_steps=0)
        sim.step({"en": 0})  # charge big high; small floats at X
        assert sim.value("big") == ONE
        sim.step({"en": 1})  # connect: big's charge dominates
        assert sim.value("big") == ONE
        assert sim.value("small") == ONE

    def test_equal_capacitance_conflict_is_x(self):
        circuit = SwitchCircuit("conflict")
        circuit.add_port("en")
        circuit.add_port("da")
        circuit.add_port("db")
        a = circuit.add_internal("a", capacitance=1.0)
        b = circuit.add_internal("b", capacitance=1.0)
        circuit.add_switch("wa", DeviceType.PMOS, "en", "da", a)
        circuit.add_switch("wb", DeviceType.PMOS, "en", "db", b)
        circuit.add_switch("t", DeviceType.NMOS, "en", a, b)
        sim = SwitchSimulator(circuit, decay_steps=0)
        sim.step({"en": 0, "da": 1, "db": 0})  # drive a=1, b=0
        sim.step({"en": 1, "da": 1, "db": 0})  # isolate from ports, connect a-b
        assert sim.value("a") == X
        assert sim.value("b") == X


class TestStrength:
    def test_depletion_load_loses_to_pulldown(self):
        circuit = SwitchCircuit("ratioed")
        circuit.add_port("a")
        circuit.add_internal("z")
        circuit.add_switch("load", DeviceType.DEPLETION, None, VDD, "z")
        circuit.add_switch("n", DeviceType.NMOS, "a", "z", VSS)
        sim = SwitchSimulator(circuit)
        assert sim.step({"a": 1})["z"] == ZERO  # strong pull-down wins
        assert sim.step({"a": 0})["z"] == ONE  # weak load pulls up

    def test_strong_fight_is_x(self):
        circuit = SwitchCircuit("fight")
        circuit.add_internal("z")
        circuit.add_switch("up", DeviceType.ALWAYS_ON, None, VDD, "z")
        circuit.add_switch("down", DeviceType.ALWAYS_ON, None, "z", VSS)
        sim = SwitchSimulator(circuit)
        assert sim.step({})["z"] == X

    def test_maybe_path_against_weak_drive_is_x(self):
        circuit = SwitchCircuit("maybe")
        circuit.add_port("a")
        circuit.add_internal("z")
        circuit.add_switch("load", DeviceType.DEPLETION, None, VDD, "z")
        circuit.add_switch("n", DeviceType.NMOS, "a", "z", VSS)
        sim = SwitchSimulator(circuit)
        assert sim.step({"a": X})["z"] == X


class TestOscillation:
    def test_ring_becomes_x(self):
        # A one-inverter loop: z drives its own gate.
        circuit = SwitchCircuit("ring")
        circuit.add_internal("z")
        circuit.add_switch("p", DeviceType.PMOS, "z", VDD, "z")
        circuit.add_switch("n", DeviceType.NMOS, "z", "z", VSS)
        sim = SwitchSimulator(circuit, max_settle_iterations=8)
        result = sim.step({})
        assert result["z"] == X
