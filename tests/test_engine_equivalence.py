"""Registry-driven differential harness: every engine vs the oracle.

Every engine registered in :mod:`repro.simulate.registry` - today
``interpreted``, ``compiled``, ``vector``, ``sharded`` and
``sharded+vector``, and automatically any engine a future PR registers
- must be bit-identical to the interpreted oracle
(:meth:`Network.evaluate_bits`) on every detection set, detection
count, first-detection index, difference word and net valuation,
across fixed circuits, hypothesis-generated circuits, both fault
kinds, pattern-window widths, weighted pattern sets - and every
registered fault **schedule** (``contiguous``/``cost``/``interleaved``,
swept on skewed-cone circuits where scheduling reorders work hardest).

Engine-specific mechanics stay in their own files
(``test_compiled_engine.py`` for the slot program's internals,
``test_sharded_engine.py`` for pools/windows/merge,
``test_vector_engine.py`` for lane arrays); the cross-engine
equivalence cases that used to be duplicated there are folded in here.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from engine_test_utils import all_faults, differential_circuits, results_identical

from repro.circuits.generators import (
    and_cone,
    domino_carry_chain,
    random_network,
    skewed_cone_network,
)
from repro.netlist import NetworkFault
from repro.simulate import (
    PatternSet,
    available_engines,
    available_schedules,
    coverage_curve,
    fault_simulate,
    get_engine,
    register_engine,
    sharded_fault_simulate,
)
from repro.simulate.faultsim import (
    FIRST_DETECTION_CHUNK,
    build_result,
    interpreted_difference_words,
    windowed_outcomes,
)

ENGINES = available_engines()
SCHEDULES = available_schedules()

#: Engines with a single-process window core (windowed_outcomes path).
WINDOW_ENGINES = ("compiled", "interpreted", "vector")


CIRCUITS = differential_circuits()


def oracle_result(network, patterns, faults, **kwargs):
    return fault_simulate(network, patterns, faults, engine="interpreted", **kwargs)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("network", CIRCUITS, ids=lambda n: n.name)
class TestEveryEngineMatchesOracle:
    """The registry contract, engine by engine, circuit by circuit."""

    def test_fault_simulate_identical(self, engine, network):
        patterns = PatternSet.random(network.inputs, 128, seed=8)
        faults = all_faults(network)
        results_identical(
            fault_simulate(network, patterns, faults, engine=engine),
            oracle_result(network, patterns, faults),
        )

    def test_first_detection_identical(self, engine, network):
        # More patterns than one chunk so the early-exit path is exercised.
        patterns = PatternSet.random(
            network.inputs, FIRST_DETECTION_CHUNK + 64, seed=9
        )
        faults = all_faults(network)
        first = fault_simulate(
            network, patterns, faults, stop_at_first_detection=True, engine=engine
        )
        results_identical(
            first,
            oracle_result(network, patterns, faults, stop_at_first_detection=True),
        )
        full = fault_simulate(network, patterns, faults, engine=engine)
        assert first.detected == full.detected
        assert first.undetected == full.undetected
        # Documented semantics: counts are pinned to 1 per detected fault.
        assert all(count == 1 for count in first.detection_counts.values())

    def test_difference_words_identical(self, engine, network):
        patterns = PatternSet.random(network.inputs, 130, seed=7)
        faults = all_faults(network)
        assert get_engine(engine).difference_words(
            network, patterns, faults
        ) == interpreted_difference_words(network, patterns, faults)

    def test_evaluate_bits_identical_on_every_net(self, engine, network):
        patterns = PatternSet.random(network.inputs, 96, seed=5)
        assert get_engine(engine).evaluate_bits(
            network, patterns.env, patterns.mask
        ) == network.evaluate_bits(patterns.env, patterns.mask)

    def test_evaluate_bits_identical_under_sparse_mask(self, engine, network):
        """Regression (PR 3): a non-contiguous mask is legal for
        evaluate_bits (it selects pattern positions) and must keep its
        positional layout on every engine."""
        patterns = PatternSet.random(network.inputs, 64, seed=15)
        sparse = patterns.mask & 0xA5A5_A5A5_A5A5_A5A5
        reference = network.evaluate_bits(patterns.env, sparse)
        assert (
            get_engine(engine).evaluate_bits(network, patterns.env, sparse)
            == reference
        )

    def test_weighted_pattern_sets_identical(self, engine, network):
        probabilities = {
            name: probability
            for name, probability in zip(network.inputs, (0.1, 0.9, 0.35, 0.5, 0.75))
        }
        patterns = PatternSet.random(
            network.inputs, 200, seed=13, probabilities=probabilities
        )
        faults = all_faults(network)
        results_identical(
            fault_simulate(network, patterns, faults, engine=engine),
            oracle_result(network, patterns, faults),
        )

    def test_empty_pattern_set_identical(self, engine, network):
        empty = PatternSet(tuple(network.inputs), {n: 0 for n in network.inputs}, 0)
        faults = all_faults(network)
        result = fault_simulate(network, empty, faults, engine=engine)
        assert result.detected == {}
        assert result.pattern_count == 0
        assert len(result.undetected) == len({f.describe() for f in faults})


@pytest.mark.parametrize("engine", ENGINES)
@settings(max_examples=12)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_inputs=st.integers(min_value=2, max_value=7),
    n_gates=st.integers(min_value=1, max_value=16),
    pattern_seed=st.integers(min_value=0, max_value=255),
    count=st.integers(min_value=1, max_value=300),
    weight=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_engines_agree_on_random_circuits(
    engine, seed, n_inputs, n_gates, pattern_seed, count, weight
):
    """Property: every engine agrees with the oracle on arbitrary random
    circuits, fault kinds and (weighted) pattern sets."""
    network = random_network(n_inputs=n_inputs, n_gates=n_gates, seed=seed)
    patterns = PatternSet.random(
        network.inputs,
        count,
        seed=pattern_seed,
        probabilities={network.inputs[0]: weight},
    )
    faults = all_faults(network)
    results_identical(
        fault_simulate(network, patterns, faults, engine=engine),
        oracle_result(network, patterns, faults),
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("schedule", SCHEDULES)
class TestEveryEngineScheduleCombination:
    """The schedule sweep: scheduling re-orders work, never results.

    Skewed-cone circuits (one huge fanout cone next to many tiny ones)
    are the adversarial topology - cost-weighted partitioning reorders
    the fault list hardest and the cross-site coalescer has the most
    two-lane stuck-at-pair batches to merge - so every engine x
    schedule combination is held bit-identical to the interpreted
    oracle on exactly that shape.
    """

    def test_fault_simulate_identical_on_skewed_cones(self, engine, schedule):
        network = skewed_cone_network(depth=9, islands=6)
        patterns = PatternSet.random(network.inputs, 160, seed=29)
        faults = all_faults(network)
        results_identical(
            fault_simulate(
                network, patterns, faults, engine=engine, schedule=schedule
            ),
            oracle_result(network, patterns, faults),
        )

    def test_first_detection_identical_on_skewed_cones(self, engine, schedule):
        network = skewed_cone_network(depth=6, islands=4)
        patterns = PatternSet.random(
            network.inputs, FIRST_DETECTION_CHUNK + 32, seed=33
        )
        faults = all_faults(network)
        results_identical(
            fault_simulate(
                network,
                patterns,
                faults,
                stop_at_first_detection=True,
                engine=engine,
                schedule=schedule,
            ),
            oracle_result(network, patterns, faults, stop_at_first_detection=True),
        )

    def test_difference_words_identical_on_skewed_cones(self, engine, schedule):
        network = skewed_cone_network(depth=7, islands=5)
        patterns = PatternSet.random(network.inputs, 130, seed=37)
        faults = all_faults(network)
        assert get_engine(engine).difference_words(
            network, patterns, faults, schedule=schedule
        ) == interpreted_difference_words(network, patterns, faults)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("schedule", SCHEDULES)
@settings(max_examples=6)
@given(
    depth=st.integers(min_value=1, max_value=12),
    islands=st.integers(min_value=0, max_value=8),
    count=st.integers(min_value=1, max_value=220),
    seed=st.integers(min_value=0, max_value=255),
)
def test_property_engine_schedule_identical_on_skewed_circuits(
    engine, schedule, depth, islands, count, seed
):
    """Property: every engine x schedule combination matches the oracle
    on hypothesis-generated skewed circuits and pattern sets."""
    network = skewed_cone_network(depth=depth, islands=islands)
    patterns = PatternSet.random(network.inputs, count, seed=seed)
    faults = all_faults(network)
    results_identical(
        fault_simulate(network, patterns, faults, engine=engine, schedule=schedule),
        oracle_result(network, patterns, faults),
    )


@pytest.mark.parametrize("engine", WINDOW_ENGINES)
@settings(max_examples=10)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=200),
    window=st.integers(min_value=1, max_value=64),
)
def test_property_window_widths_exact(engine, seed, count, window):
    """Property: windowed == whole-set for every single-process window
    core, on arbitrary circuits and window widths (uneven tails
    included)."""
    network = random_network(n_inputs=5, n_gates=9, seed=seed)
    patterns = PatternSet.random(network.inputs, count, seed=seed ^ 0xAAAA)
    faults = all_faults(network)
    outcomes = windowed_outcomes(network, patterns, faults, window, False, engine)
    rebuilt = build_result(network.name, patterns.count, faults, outcomes)
    results_identical(rebuilt, oracle_result(network, patterns, faults))


@settings(max_examples=8)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=200),
    window=st.integers(min_value=1, max_value=64),
    inner=st.sampled_from(WINDOW_ENGINES),
    schedule=st.sampled_from(SCHEDULES),
)
def test_property_sharded_window_widths_exact(seed, count, window, inner, schedule):
    """Property: the shard pool composes exactly with any inner window
    core at any window width, under any schedule."""
    network = random_network(n_inputs=5, n_gates=9, seed=seed)
    patterns = PatternSet.random(network.inputs, count, seed=seed ^ 0x5555)
    faults = all_faults(network)
    sharded = sharded_fault_simulate(
        network, patterns, faults, window=window, jobs=2, engine=inner,
        schedule=schedule,
    )
    results_identical(sharded, oracle_result(network, patterns, faults))


class TestEngineContracts:
    """Per-engine input-validation contracts, over the whole registry."""

    def test_stuck_on_unknown_net_raises_on_all_engines(self):
        network = domino_carry_chain(2)
        patterns = PatternSet.exhaustive(network.inputs)
        ghost = NetworkFault.stuck_at("ghost", 1)
        for engine in ENGINES:
            with pytest.raises(ValueError, match="cannot be injected"):
                fault_simulate(network, patterns, [ghost], engine=engine)

    def test_cell_fault_on_unknown_gate_raises_on_all_engines(self):
        network = domino_carry_chain(2)
        patterns = PatternSet.exhaustive(network.inputs)
        template = network.enumerate_faults()[0]
        orphan = NetworkFault.cell_fault(
            "no_such_gate", template.class_index, template.function
        )
        for engine in ENGINES:
            with pytest.raises(ValueError, match="cannot be injected"):
                fault_simulate(network, patterns, [orphan], engine=engine)

    def test_distinct_faults_sharing_a_label_raise_on_all_engines(self):
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        colliding = [
            NetworkFault.stuck_at("a0", 0),
            NetworkFault(kind="stuck", net="a1", value=0, label="s0-a0"),
        ]
        for engine in ENGINES:
            with pytest.raises(ValueError, match="shared by two distinct"):
                fault_simulate(network, patterns, colliding, engine=engine)

    def test_duplicate_of_same_fault_reported_once_on_all_engines(self):
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        fault = NetworkFault.stuck_at("a0", 0)
        single = fault_simulate(network, patterns, [fault], engine="interpreted")
        for engine in ENGINES:
            doubled = fault_simulate(network, patterns, [fault, fault], engine=engine)
            results_identical(doubled, single)


class TestRegistryErrorPaths:
    def test_unknown_engine_message_lists_sorted_available_engines(self):
        with pytest.raises(ValueError) as excinfo:
            get_engine("turbo")
        message = str(excinfo.value)
        assert message == (
            "unknown engine 'turbo'; available engines: " + ", ".join(ENGINES)
        )
        assert list(ENGINES) == sorted(ENGINES)

    def test_fault_simulate_rejects_unknown_engine(self):
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        with pytest.raises(ValueError, match="unknown engine"):
            fault_simulate(network, patterns, engine="turbo")

    def test_register_engine_is_idempotent(self):
        engine = get_engine("compiled")
        before = available_engines()
        assert register_engine(engine) is engine
        assert register_engine(engine) is engine
        assert available_engines() == before
        assert get_engine("compiled") is engine

    def test_fault_simulate_rejects_unknown_schedule_on_every_engine(self):
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        for engine in ENGINES:
            with pytest.raises(ValueError, match="unknown schedule"):
                fault_simulate(
                    network, patterns, engine=engine, schedule="turbo"
                )

    def test_difference_words_rejects_unknown_schedule_on_every_engine(self):
        """Regression: the estimator path enters through
        ``Engine.difference_words``, which bypasses ``fault_simulate``'s
        up-front check - the serial engines must still reject bad
        schedule names there instead of silently ignoring them."""
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        faults = all_faults(network)
        for engine in ENGINES:
            with pytest.raises(ValueError, match="unknown schedule"):
                get_engine(engine).difference_words(
                    network, patterns, faults, schedule="turbo"
                )

    def test_unknown_schedule_message_lists_sorted_available_schedules(self):
        from repro.simulate import get_schedule

        with pytest.raises(ValueError) as excinfo:
            get_schedule("turbo")
        assert str(excinfo.value) == (
            "unknown schedule 'turbo'; available schedules: "
            + ", ".join(SCHEDULES)
        )
        assert list(SCHEDULES) == sorted(SCHEDULES)

    def test_cli_engine_choices_match_registry(self):
        """ENGINE_CHOICES is spelled out in cli.py (to keep --help free
        of the simulate import cost); it must not drift from the
        registry."""
        from repro.cli import ENGINE_CHOICES

        assert tuple(sorted(ENGINE_CHOICES)) == ENGINES

    def test_cli_schedule_choices_match_registry(self):
        from repro.cli import SCHEDULE_CHOICES

        assert tuple(sorted(SCHEDULE_CHOICES)) == SCHEDULES

    def test_cli_rejects_unknown_engine_with_registry_message(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["protest", "cell.txt", "--engine", "turbo"])
        stderr = capsys.readouterr().err
        assert "unknown engine 'turbo'; available engines: " + ", ".join(
            ENGINES
        ) in stderr

    def test_cli_accepts_every_registered_engine(self):
        from repro.cli import build_parser

        parser = build_parser()
        for engine in ENGINES:
            args = parser.parse_args(["protest", "cell.txt", "--engine", engine])
            assert args.engine == engine

    def test_cli_jobs_flag(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["protest", "cell.txt", "--engine", "sharded", "--jobs", "2"]
        )
        assert args.engine == "sharded"
        assert args.jobs == 2

    def test_cli_accepts_every_registered_schedule(self):
        from repro.cli import build_parser

        parser = build_parser()
        for schedule in SCHEDULES:
            args = parser.parse_args(
                ["protest", "cell.txt", "--schedule", schedule]
            )
            assert args.schedule == schedule
        assert parser.parse_args(["protest", "cell.txt"]).schedule is None

    def test_cli_rejects_unknown_schedule_with_registry_message(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["protest", "cell.txt", "--schedule", "turbo"])
        stderr = capsys.readouterr().err
        assert "unknown schedule 'turbo'; available schedules: " + ", ".join(
            SCHEDULES
        ) in stderr


class TestEstimatorsAcrossEngines:
    def test_monte_carlo_estimators_identical_across_engines(self):
        from repro.protest import (
            monte_carlo_detection_probabilities,
            monte_carlo_signal_probabilities,
        )

        network = domino_carry_chain(3)
        faults = network.enumerate_faults()
        reference_detect = monte_carlo_detection_probabilities(
            network, faults, samples=512, engine="interpreted"
        )
        reference_signal = monte_carlo_signal_probabilities(
            network, samples=512, engine="interpreted"
        )
        for engine in ENGINES:
            assert monte_carlo_detection_probabilities(
                network, faults, samples=512, engine=engine
            ) == reference_detect, engine
            assert monte_carlo_signal_probabilities(
                network, samples=512, engine=engine
            ) == reference_signal, engine

    def test_coverage_curve_identical_across_engines(self):
        network = domino_carry_chain(3)
        patterns = PatternSet.random(network.inputs, 128, seed=10)
        reference = coverage_curve(network, patterns, points=8, engine="interpreted")
        for engine in ENGINES:
            assert (
                coverage_curve(network, patterns, points=8, engine=engine)
                == reference
            ), engine

    def test_protest_facade_identical_across_engines(self):
        from repro.protest import Protest

        network = domino_carry_chain(3)
        reference = Protest(network, engine="interpreted").validate(200, seed=7)
        for engine in ENGINES:
            results_identical(
                Protest(network, engine=engine, jobs=2).validate(200, seed=7),
                reference,
            )

    def test_protest_facade_identical_across_schedules(self):
        from repro.protest import Protest

        network = skewed_cone_network(depth=5, islands=3)
        reference = Protest(network, engine="interpreted").validate(200, seed=7)
        for schedule in SCHEDULES:
            for engine in ("vector", "sharded+vector"):
                results_identical(
                    Protest(
                        network, engine=engine, jobs=2, schedule=schedule
                    ).validate(200, seed=7),
                    reference,
                )
