"""Registry-driven differential harness: every engine vs the oracle.

Every engine registered in :mod:`repro.simulate.registry` - today
``interpreted``, ``compiled``, ``vector``, ``sharded`` and
``sharded+vector``, and automatically any engine a future PR registers
- must be bit-identical to the interpreted oracle
(:meth:`Network.evaluate_bits`) on every detection set, detection
count, first-detection index, difference word and net valuation,
across fixed circuits, hypothesis-generated circuits, both fault
kinds, pattern-window widths, weighted pattern sets - every
registered fault **schedule** (``contiguous``/``cost``/``interleaved``,
swept on skewed-cone circuits where scheduling reorders work hardest)
- and every **tuning plan** (:mod:`repro.simulate.tuning`: the default
constants, an adversarial profile forcing tiny chunk/window widths
that do not divide the word count, and the host-calibrated ``auto``
plan), since plans re-tile every pass and must never move a bit - and
the **collapse** dimension (:mod:`repro.faults.structural`): simulating
one representative per structural equivalence class and scattering the
outcomes back must be bit-identical too, as must coverage-capped runs
(``stop_at_coverage``), whose stopping window is pinned to the same
streaming grid on every engine - and the **cache** dimension
(:mod:`repro.simulate.artifacts`): a warm artifact store only skips
re-derivation, so a cached re-run must be bit-identical to the cold
run on every engine x schedule x plan x collapse combination, on every
cache mode (``off``, ``memory``, a disk-tier directory).

Engine-specific mechanics stay in their own files
(``test_compiled_engine.py`` for the slot program's internals,
``test_sharded_engine.py`` for pools/windows/merge,
``test_vector_engine.py`` for lane arrays); the cross-engine
equivalence cases that used to be duplicated there are folded in here.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from engine_test_utils import all_faults, differential_circuits, results_identical

from repro.circuits.generators import (
    and_cone,
    domino_carry_chain,
    random_network,
    skewed_cone_network,
)
from repro.netlist import NetworkFault
from repro.simulate import (
    ArtifactStore,
    LfsrSource,
    PatternSet,
    PatternSetSource,
    RandomSource,
    TuningProfile,
    WeightedSource,
    available_engines,
    available_schedules,
    available_sources,
    available_tunings,
    coverage_curve,
    fault_simulate,
    get_engine,
    get_source,
    register_engine,
    resolve_plan,
    sharded_fault_simulate,
    streaming_coverage,
)
from repro.simulate.faultsim import (
    FIRST_DETECTION_CHUNK,
    build_result,
    interpreted_difference_words,
    windowed_outcomes,
)

ENGINES = available_engines()
SCHEDULES = available_schedules()

#: Engines with a single-process window core (windowed_outcomes path).
WINDOW_ENGINES = ("compiled", "interpreted", "vector")

#: Tuning plans the harness sweeps: the historical constants, an
#: adversarial profile whose tiny cache budget forces one-word chunks
#: and 64-pattern windows (uneven tails everywhere), and the
#: host-calibrated plan.  "adversarial" is materialised as a profile
#: JSON by the ``tuning_specs`` fixture, exercising the --tune path
#: form end to end.
TUNINGS = ("default", "adversarial", "auto")

ADVERSARIAL_TUNING = TuningProfile(
    name="adversarial", word_ns=1.0, call_ns=1.0, block_ns=4.0, cache_words=7
)

#: A second adversary for chunk geometry: the cache budget is sized so
#: multi-word windows survive while per-cone chunks land on widths (2,
#: 5, 9, ...) that do not divide the window's word count.
ODD_CHUNK_TUNING = TuningProfile(
    name="odd-chunks", word_ns=1.0, call_ns=1.0, block_ns=2.0, cache_words=120
)


@pytest.fixture(scope="session")
def tuning_specs(tmp_path_factory):
    """Map sweep names to the specs callers would actually pass."""
    path = tmp_path_factory.mktemp("tuning") / "adversarial.json"
    ADVERSARIAL_TUNING.save(path)
    return {"default": "default", "adversarial": str(path), "auto": "auto"}


CIRCUITS = differential_circuits()


def oracle_result(network, patterns, faults, **kwargs):
    return fault_simulate(network, patterns, faults, engine="interpreted", **kwargs)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("network", CIRCUITS, ids=lambda n: n.name)
class TestEveryEngineMatchesOracle:
    """The registry contract, engine by engine, circuit by circuit."""

    def test_fault_simulate_identical(self, engine, network):
        patterns = PatternSet.random(network.inputs, 128, seed=8)
        faults = all_faults(network)
        results_identical(
            fault_simulate(network, patterns, faults, engine=engine),
            oracle_result(network, patterns, faults),
        )

    def test_first_detection_identical(self, engine, network):
        # More patterns than one chunk so the early-exit path is exercised.
        patterns = PatternSet.random(
            network.inputs, FIRST_DETECTION_CHUNK + 64, seed=9
        )
        faults = all_faults(network)
        first = fault_simulate(
            network, patterns, faults, stop_at_first_detection=True, engine=engine
        )
        results_identical(
            first,
            oracle_result(network, patterns, faults, stop_at_first_detection=True),
        )
        full = fault_simulate(network, patterns, faults, engine=engine)
        assert first.detected == full.detected
        assert first.undetected == full.undetected
        # Documented semantics: counts are pinned to 1 per detected fault.
        assert all(count == 1 for count in first.detection_counts.values())

    def test_difference_words_identical(self, engine, network):
        patterns = PatternSet.random(network.inputs, 130, seed=7)
        faults = all_faults(network)
        assert get_engine(engine).difference_words(
            network, patterns, faults
        ) == interpreted_difference_words(network, patterns, faults)

    def test_evaluate_bits_identical_on_every_net(self, engine, network):
        patterns = PatternSet.random(network.inputs, 96, seed=5)
        assert get_engine(engine).evaluate_bits(
            network, patterns.env, patterns.mask
        ) == network.evaluate_bits(patterns.env, patterns.mask)

    def test_evaluate_bits_identical_under_sparse_mask(self, engine, network):
        """Regression (PR 3): a non-contiguous mask is legal for
        evaluate_bits (it selects pattern positions) and must keep its
        positional layout on every engine."""
        patterns = PatternSet.random(network.inputs, 64, seed=15)
        sparse = patterns.mask & 0xA5A5_A5A5_A5A5_A5A5
        reference = network.evaluate_bits(patterns.env, sparse)
        assert (
            get_engine(engine).evaluate_bits(network, patterns.env, sparse)
            == reference
        )

    def test_weighted_pattern_sets_identical(self, engine, network):
        probabilities = {
            name: probability
            for name, probability in zip(network.inputs, (0.1, 0.9, 0.35, 0.5, 0.75))
        }
        patterns = PatternSet.random(
            network.inputs, 200, seed=13, probabilities=probabilities
        )
        faults = all_faults(network)
        results_identical(
            fault_simulate(network, patterns, faults, engine=engine),
            oracle_result(network, patterns, faults),
        )

    def test_empty_pattern_set_identical(self, engine, network):
        empty = PatternSet(tuple(network.inputs), {n: 0 for n in network.inputs}, 0)
        faults = all_faults(network)
        result = fault_simulate(network, empty, faults, engine=engine)
        assert result.detected == {}
        assert result.pattern_count == 0
        assert len(result.undetected) == len({f.describe() for f in faults})


@pytest.mark.parametrize("engine", ENGINES)
@settings(max_examples=12)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_inputs=st.integers(min_value=2, max_value=7),
    n_gates=st.integers(min_value=1, max_value=16),
    pattern_seed=st.integers(min_value=0, max_value=255),
    count=st.integers(min_value=1, max_value=300),
    weight=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_engines_agree_on_random_circuits(
    engine, seed, n_inputs, n_gates, pattern_seed, count, weight
):
    """Property: every engine agrees with the oracle on arbitrary random
    circuits, fault kinds and (weighted) pattern sets."""
    network = random_network(n_inputs=n_inputs, n_gates=n_gates, seed=seed)
    patterns = PatternSet.random(
        network.inputs,
        count,
        seed=pattern_seed,
        probabilities={network.inputs[0]: weight},
    )
    faults = all_faults(network)
    results_identical(
        fault_simulate(network, patterns, faults, engine=engine),
        oracle_result(network, patterns, faults),
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("schedule", SCHEDULES)
class TestEveryEngineScheduleCombination:
    """The schedule sweep: scheduling re-orders work, never results.

    Skewed-cone circuits (one huge fanout cone next to many tiny ones)
    are the adversarial topology - cost-weighted partitioning reorders
    the fault list hardest and the cross-site coalescer has the most
    two-lane stuck-at-pair batches to merge - so every engine x
    schedule combination is held bit-identical to the interpreted
    oracle on exactly that shape.
    """

    def test_fault_simulate_identical_on_skewed_cones(self, engine, schedule):
        network = skewed_cone_network(depth=9, islands=6)
        patterns = PatternSet.random(network.inputs, 160, seed=29)
        faults = all_faults(network)
        results_identical(
            fault_simulate(
                network, patterns, faults, engine=engine, schedule=schedule
            ),
            oracle_result(network, patterns, faults),
        )

    def test_first_detection_identical_on_skewed_cones(self, engine, schedule):
        network = skewed_cone_network(depth=6, islands=4)
        patterns = PatternSet.random(
            network.inputs, FIRST_DETECTION_CHUNK + 32, seed=33
        )
        faults = all_faults(network)
        results_identical(
            fault_simulate(
                network,
                patterns,
                faults,
                stop_at_first_detection=True,
                engine=engine,
                schedule=schedule,
            ),
            oracle_result(network, patterns, faults, stop_at_first_detection=True),
        )

    def test_difference_words_identical_on_skewed_cones(self, engine, schedule):
        network = skewed_cone_network(depth=7, islands=5)
        patterns = PatternSet.random(network.inputs, 130, seed=37)
        faults = all_faults(network)
        assert get_engine(engine).difference_words(
            network, patterns, faults, schedule=schedule
        ) == interpreted_difference_words(network, patterns, faults)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("schedule", SCHEDULES)
@settings(max_examples=6)
@given(
    depth=st.integers(min_value=1, max_value=12),
    islands=st.integers(min_value=0, max_value=8),
    count=st.integers(min_value=1, max_value=220),
    seed=st.integers(min_value=0, max_value=255),
)
def test_property_engine_schedule_identical_on_skewed_circuits(
    engine, schedule, depth, islands, count, seed
):
    """Property: every engine x schedule combination matches the oracle
    on hypothesis-generated skewed circuits and pattern sets."""
    network = skewed_cone_network(depth=depth, islands=islands)
    patterns = PatternSet.random(network.inputs, count, seed=seed)
    faults = all_faults(network)
    results_identical(
        fault_simulate(network, patterns, faults, engine=engine, schedule=schedule),
        oracle_result(network, patterns, faults),
    )


_ORACLE_CACHE = {}


def _cached_oracle(key, network, patterns, faults, **kwargs):
    """One oracle run per (circuit, pattern) configuration for the
    engine x schedule x plan sweep - 45 combinations re-deriving the
    same interpreted reference would dominate the harness's runtime."""
    cached = _ORACLE_CACHE.get(key)
    if cached is None:
        cached = oracle_result(network, patterns, faults, **kwargs)
        _ORACLE_CACHE[key] = cached
    return cached


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("schedule", SCHEDULES)
@pytest.mark.parametrize("tuning", TUNINGS)
class TestEveryEngineSchedulePlanCombination:
    """The full sweep: plans re-tile work, schedules re-order it, and
    neither - in any combination, on any engine - may move a bit.

    The skewed-cone circuit is the adversary for both at once: the
    spine's deep cones get the narrowest tuned chunks while the
    coalescer merges the islands' underfilled batches, and the
    adversarial profile forces one-word chunks and 64-pattern windows
    whose tails do not divide the pattern count.
    """

    def test_fault_simulate_identical_on_skewed_cones(
        self, engine, schedule, tuning, tuning_specs
    ):
        network = skewed_cone_network(depth=9, islands=6)
        patterns = PatternSet.random(network.inputs, 163, seed=47)
        faults = all_faults(network)
        results_identical(
            fault_simulate(
                network, patterns, faults, engine=engine, schedule=schedule,
                tune=tuning_specs[tuning],
            ),
            _cached_oracle("skew-plan-sweep", network, patterns, faults),
        )

    def test_collapsed_run_identical_on_skewed_cones(
        self, engine, schedule, tuning, tuning_specs
    ):
        """The collapse sweep dimension: simulating one representative
        per structural equivalence class and scattering the outcomes
        back must be bit-identical on every engine x schedule x plan
        combination."""
        network = skewed_cone_network(depth=9, islands=6)
        patterns = PatternSet.random(network.inputs, 163, seed=47)
        faults = all_faults(network)
        collapsed = fault_simulate(
            network, patterns, faults, engine=engine, schedule=schedule,
            tune=tuning_specs[tuning], collapse="on",
        )
        results_identical(
            collapsed,
            _cached_oracle("skew-plan-sweep", network, patterns, faults),
        )
        assert collapsed.collapsed_classes is not None
        assert collapsed.collapsed_classes <= collapsed.fault_count


#: Cache modes the harness sweeps: caching disabled, the in-memory
#: tier, and the persistent disk tier ("disk" is materialised as a
#: per-test directory, exercising the --cache path form end to end).
CACHE_SWEEP = ("off", "memory", "disk")


def _cache_spec(mode, tmp_path):
    if mode == "disk":
        return str(tmp_path / "artifact-store")
    if mode == "memory":
        return ArtifactStore()  # a fresh store: the test owns warm-up
    return mode


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("schedule", SCHEDULES)
@pytest.mark.parametrize("cache_mode", CACHE_SWEEP)
class TestEveryEngineScheduleCacheCombination:
    """The cache sweep dimension: a warm store only skips
    re-derivation.  Each combination runs cold then warm on the same
    store - both must match the cache-free oracle bit for bit, on the
    collapsed run too (collapse classes are themselves cached
    artifacts)."""

    def test_cached_rerun_identical_on_skewed_cones(
        self, engine, schedule, cache_mode, tmp_path
    ):
        network = skewed_cone_network(depth=9, islands=6)
        patterns = PatternSet.random(network.inputs, 163, seed=47)
        faults = all_faults(network)
        spec = _cache_spec(cache_mode, tmp_path)
        cold = fault_simulate(
            network, patterns, faults, engine=engine, schedule=schedule,
            collapse="on", cache=spec,
        )
        warm = fault_simulate(
            network, patterns, faults, engine=engine, schedule=schedule,
            collapse="on", cache=spec,
        )
        results_identical(
            cold, _cached_oracle("skew-plan-sweep", network, patterns, faults)
        )
        results_identical(warm, cold)


@pytest.mark.parametrize("engine", ("compiled", "vector"))
@pytest.mark.parametrize("tuning", TUNINGS)
@pytest.mark.parametrize("cache_mode", CACHE_SWEEP)
class TestEveryPlanCacheCombination:
    """The plan x cache cross: tuned plans re-tile the cached slot
    programs and batch plans, and a warm store must hand back artifacts
    that re-tile to the same bits."""

    def test_cached_rerun_identical_under_every_plan(
        self, engine, tuning, cache_mode, tuning_specs, tmp_path
    ):
        network = skewed_cone_network(depth=9, islands=6)
        patterns = PatternSet.random(network.inputs, 163, seed=47)
        faults = all_faults(network)
        spec = _cache_spec(cache_mode, tmp_path)
        cold = fault_simulate(
            network, patterns, faults, engine=engine,
            tune=tuning_specs[tuning], cache=spec,
        )
        warm = fault_simulate(
            network, patterns, faults, engine=engine,
            tune=tuning_specs[tuning], cache=spec,
        )
        results_identical(
            cold, _cached_oracle("skew-plan-sweep", network, patterns, faults)
        )
        results_identical(warm, cold)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("tuning", TUNINGS)
class TestEveryEnginePlanCombination:
    """The engine x plan surfaces beyond plain fault simulation."""

    def test_first_detection_identical_under_every_plan(
        self, engine, tuning, tuning_specs
    ):
        network = skewed_cone_network(depth=6, islands=4)
        patterns = PatternSet.random(
            network.inputs, FIRST_DETECTION_CHUNK + 32, seed=51
        )
        faults = all_faults(network)
        results_identical(
            fault_simulate(
                network,
                patterns,
                faults,
                stop_at_first_detection=True,
                engine=engine,
                tune=tuning_specs[tuning],
            ),
            _cached_oracle(
                "skew-plan-first", network, patterns, faults,
                stop_at_first_detection=True,
            ),
        )

    def test_difference_words_identical_under_every_plan(
        self, engine, tuning, tuning_specs
    ):
        network = skewed_cone_network(depth=7, islands=5)
        patterns = PatternSet.random(network.inputs, 130, seed=53)
        faults = all_faults(network)
        assert get_engine(engine).difference_words(
            network, patterns, faults, tune=tuning_specs[tuning]
        ) == interpreted_difference_words(network, patterns, faults)


@pytest.mark.parametrize("engine", ENGINES)
def test_chunks_that_do_not_divide_the_word_count_are_exact(engine):
    """The odd-chunk adversary: a cache budget sized so windows span
    many words while per-cone chunk widths land on non-divisors of the
    word count (and differ cone by cone) - the boundary arithmetic the
    per-cone planner must get right where one global chunk never could.
    """
    network = skewed_cone_network(depth=9, islands=6)
    patterns = PatternSet.random(network.inputs, 1000, seed=59)  # 16 words
    faults = all_faults(network)
    results_identical(
        fault_simulate(network, patterns, faults, engine=engine,
                       tune=ODD_CHUNK_TUNING),
        _cached_oracle("skew-odd-chunks", network, patterns, faults),
    )


@pytest.mark.parametrize("engine", ("vector", "sharded+vector"))
@settings(max_examples=6)
@given(
    depth=st.integers(min_value=1, max_value=10),
    islands=st.integers(min_value=0, max_value=6),
    count=st.integers(min_value=1, max_value=220),
    cache_words=st.integers(min_value=1, max_value=4096),
)
def test_property_tuned_plans_identical_on_skewed_circuits(
    engine, depth, islands, count, cache_words
):
    """Property: arbitrary cache budgets (hence arbitrary chunk/window
    geometries) never move a bit on the engines that consume them."""
    profile = TuningProfile(
        name="prop", word_ns=1.0, call_ns=3.0, block_ns=2.0,
        cache_words=cache_words,
    )
    network = skewed_cone_network(depth=depth, islands=islands)
    patterns = PatternSet.random(network.inputs, count, seed=count)
    faults = all_faults(network)
    results_identical(
        fault_simulate(network, patterns, faults, engine=engine, tune=profile),
        oracle_result(network, patterns, faults),
    )


@pytest.mark.parametrize("engine", WINDOW_ENGINES)
@settings(max_examples=10)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=200),
    window=st.integers(min_value=1, max_value=64),
)
def test_property_window_widths_exact(engine, seed, count, window):
    """Property: windowed == whole-set for every single-process window
    core, on arbitrary circuits and window widths (uneven tails
    included)."""
    network = random_network(n_inputs=5, n_gates=9, seed=seed)
    patterns = PatternSet.random(network.inputs, count, seed=seed ^ 0xAAAA)
    faults = all_faults(network)
    outcomes = windowed_outcomes(network, patterns, faults, window, False, engine)
    rebuilt = build_result(network.name, patterns.count, faults, outcomes)
    results_identical(rebuilt, oracle_result(network, patterns, faults))


@settings(max_examples=8)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=200),
    window=st.integers(min_value=1, max_value=64),
    inner=st.sampled_from(WINDOW_ENGINES),
    schedule=st.sampled_from(SCHEDULES),
)
def test_property_sharded_window_widths_exact(seed, count, window, inner, schedule):
    """Property: the shard pool composes exactly with any inner window
    core at any window width, under any schedule."""
    network = random_network(n_inputs=5, n_gates=9, seed=seed)
    patterns = PatternSet.random(network.inputs, count, seed=seed ^ 0x5555)
    faults = all_faults(network)
    sharded = sharded_fault_simulate(
        network, patterns, faults, window=window, jobs=2, engine=inner,
        schedule=schedule,
    )
    results_identical(sharded, oracle_result(network, patterns, faults))


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("schedule", SCHEDULES)
@pytest.mark.parametrize("tuning", ("default", "adversarial", "auto"))
@settings(max_examples=3)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=200),
)
def test_property_collapsed_identical_on_every_engine_schedule_plan(
    engine, schedule, tuning, seed, count
):
    """Property: ``collapse="on"`` is bit-identical to the uncollapsed
    run across every engine x schedule x plan combination, on arbitrary
    random circuits and pattern sets - the tentpole contract."""
    tune = ADVERSARIAL_TUNING if tuning == "adversarial" else tuning
    network = random_network(n_inputs=5, n_gates=11, seed=seed)
    patterns = PatternSet.random(network.inputs, count, seed=seed ^ 0x3333)
    faults = all_faults(network)
    results_identical(
        fault_simulate(
            network, patterns, faults, engine=engine, schedule=schedule,
            tune=tune, collapse="on",
        ),
        fault_simulate(
            network, patterns, faults, engine=engine, schedule=schedule,
            tune=tune,
        ),
    )


@pytest.mark.parametrize("engine", ENGINES)
class TestStopAtCoverageAcrossEngines:
    """Dynamic fault dropping: every engine stops at the identical
    window (the FIRST_DETECTION_CHUNK grid is pinned everywhere), so
    coverage-capped runs are bit-identical across the registry - with
    and without collapsing, whose class-size weights keep the stopping
    window aligned with the uncollapsed universe."""

    def test_coverage_capped_run_identical_to_oracle(self, engine):
        network = skewed_cone_network(depth=6, islands=4)
        patterns = PatternSet.random(
            network.inputs, 3 * FIRST_DETECTION_CHUNK + 32, seed=61
        )
        faults = all_faults(network)
        for threshold in (0.3, 0.7, 1.0):
            results_identical(
                fault_simulate(
                    network, patterns, faults, engine=engine,
                    stop_at_coverage=threshold,
                ),
                _cached_oracle(
                    ("skew-coverage", threshold), network, patterns, faults,
                    stop_at_coverage=threshold,
                ),
            )

    def test_coverage_capped_collapsed_run_identical(self, engine):
        network = skewed_cone_network(depth=6, islands=4)
        patterns = PatternSet.random(
            network.inputs, 3 * FIRST_DETECTION_CHUNK + 32, seed=61
        )
        faults = all_faults(network)
        for threshold in (0.3, 0.7):
            results_identical(
                fault_simulate(
                    network, patterns, faults, engine=engine,
                    stop_at_coverage=threshold, collapse="on",
                ),
                _cached_oracle(
                    ("skew-coverage", threshold), network, patterns, faults,
                    stop_at_coverage=threshold,
                ),
            )


@settings(max_examples=8)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=600),
    threshold=st.floats(min_value=0.05, max_value=1.0),
    engine=st.sampled_from(ENGINES),
    collapse=st.sampled_from(("off", "on")),
)
def test_property_coverage_capped_runs_identical(
    seed, count, threshold, engine, collapse
):
    """Property: any coverage threshold stops every engine - collapsed
    or not - at the same window as the interpreted oracle."""
    network = random_network(n_inputs=5, n_gates=9, seed=seed)
    patterns = PatternSet.random(network.inputs, count, seed=seed ^ 0x7777)
    faults = all_faults(network)
    results_identical(
        fault_simulate(
            network, patterns, faults, engine=engine,
            stop_at_coverage=threshold, collapse=collapse,
        ),
        oracle_result(network, patterns, faults, stop_at_coverage=threshold),
    )


class TestEngineContracts:
    """Per-engine input-validation contracts, over the whole registry."""

    def test_stuck_on_unknown_net_raises_on_all_engines(self):
        network = domino_carry_chain(2)
        patterns = PatternSet.exhaustive(network.inputs)
        ghost = NetworkFault.stuck_at("ghost", 1)
        for engine in ENGINES:
            with pytest.raises(ValueError, match="cannot be injected"):
                fault_simulate(network, patterns, [ghost], engine=engine)

    def test_cell_fault_on_unknown_gate_raises_on_all_engines(self):
        network = domino_carry_chain(2)
        patterns = PatternSet.exhaustive(network.inputs)
        template = network.enumerate_faults()[0]
        orphan = NetworkFault.cell_fault(
            "no_such_gate", template.class_index, template.function
        )
        for engine in ENGINES:
            with pytest.raises(ValueError, match="cannot be injected"):
                fault_simulate(network, patterns, [orphan], engine=engine)

    def test_distinct_faults_sharing_a_label_raise_on_all_engines(self):
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        colliding = [
            NetworkFault.stuck_at("a0", 0),
            NetworkFault(kind="stuck", net="a1", value=0, label="s0-a0"),
        ]
        for engine in ENGINES:
            with pytest.raises(ValueError, match="shared by two distinct"):
                fault_simulate(network, patterns, colliding, engine=engine)

    def test_duplicate_of_same_fault_reported_once_on_all_engines(self):
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        fault = NetworkFault.stuck_at("a0", 0)
        single = fault_simulate(network, patterns, [fault], engine="interpreted")
        for engine in ENGINES:
            doubled = fault_simulate(network, patterns, [fault, fault], engine=engine)
            results_identical(doubled, single)


class TestRegistryErrorPaths:
    def test_unknown_engine_message_lists_sorted_available_engines(self):
        with pytest.raises(ValueError) as excinfo:
            get_engine("turbo")
        message = str(excinfo.value)
        assert message == (
            "unknown engine 'turbo'; available engines: " + ", ".join(ENGINES)
        )
        assert list(ENGINES) == sorted(ENGINES)

    def test_fault_simulate_rejects_unknown_engine(self):
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        with pytest.raises(ValueError, match="unknown engine"):
            fault_simulate(network, patterns, engine="turbo")

    def test_register_engine_is_idempotent(self):
        engine = get_engine("compiled")
        before = available_engines()
        assert register_engine(engine) is engine
        assert register_engine(engine) is engine
        assert available_engines() == before
        assert get_engine("compiled") is engine

    def test_fault_simulate_rejects_unknown_schedule_on_every_engine(self):
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        for engine in ENGINES:
            with pytest.raises(ValueError, match="unknown schedule"):
                fault_simulate(
                    network, patterns, engine=engine, schedule="turbo"
                )

    def test_difference_words_rejects_unknown_schedule_on_every_engine(self):
        """Regression: the estimator path enters through
        ``Engine.difference_words``, which bypasses ``fault_simulate``'s
        up-front check - the serial engines must still reject bad
        schedule names there instead of silently ignoring them."""
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        faults = all_faults(network)
        for engine in ENGINES:
            with pytest.raises(ValueError, match="unknown schedule"):
                get_engine(engine).difference_words(
                    network, patterns, faults, schedule="turbo"
                )

    def test_unknown_schedule_message_lists_sorted_available_schedules(self):
        from repro.simulate import get_schedule

        with pytest.raises(ValueError) as excinfo:
            get_schedule("turbo")
        assert str(excinfo.value) == (
            "unknown schedule 'turbo'; available schedules: "
            + ", ".join(SCHEDULES)
        )
        assert list(SCHEDULES) == sorted(SCHEDULES)

    def test_cli_engine_choices_match_registry(self):
        """ENGINE_CHOICES is spelled out in cli.py (to keep --help free
        of the simulate import cost); it must not drift from the
        registry."""
        from repro.cli import ENGINE_CHOICES

        assert tuple(sorted(ENGINE_CHOICES)) == ENGINES

    def test_cli_schedule_choices_match_registry(self):
        from repro.cli import SCHEDULE_CHOICES

        assert tuple(sorted(SCHEDULE_CHOICES)) == SCHEDULES

    def test_cli_collapse_choices_match_module(self):
        from repro.cli import COLLAPSE_CHOICES
        from repro.faults.structural import available_collapse_modes

        assert tuple(sorted(COLLAPSE_CHOICES)) == available_collapse_modes()

    def test_cli_rejects_unknown_collapse_with_module_message(self, capsys):
        from repro.cli import build_parser
        from repro.faults.structural import available_collapse_modes

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["protest", "cell.txt", "--collapse", "turbo"])
        stderr = capsys.readouterr().err
        assert (
            "unknown collapse mode 'turbo'; available collapse modes: "
            + ", ".join(available_collapse_modes())
        ) in stderr

    def test_cli_accepts_every_collapse_mode(self):
        from repro.cli import COLLAPSE_CHOICES, build_parser

        parser = build_parser()
        for mode in COLLAPSE_CHOICES:
            args = parser.parse_args(["protest", "cell.txt", "--collapse", mode])
            assert args.collapse == mode
        assert parser.parse_args(["protest", "cell.txt"]).collapse is None

    def test_cli_rejects_unknown_engine_with_registry_message(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["protest", "cell.txt", "--engine", "turbo"])
        stderr = capsys.readouterr().err
        assert "unknown engine 'turbo'; available engines: " + ", ".join(
            ENGINES
        ) in stderr

    def test_cli_accepts_every_registered_engine(self):
        from repro.cli import build_parser

        parser = build_parser()
        for engine in ENGINES:
            args = parser.parse_args(["protest", "cell.txt", "--engine", engine])
            assert args.engine == engine

    def test_cli_jobs_flag(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["protest", "cell.txt", "--engine", "sharded", "--jobs", "2"]
        )
        assert args.engine == "sharded"
        assert args.jobs == 2

    def test_cli_accepts_every_registered_schedule(self):
        from repro.cli import build_parser

        parser = build_parser()
        for schedule in SCHEDULES:
            args = parser.parse_args(
                ["protest", "cell.txt", "--schedule", schedule]
            )
            assert args.schedule == schedule
        assert parser.parse_args(["protest", "cell.txt"]).schedule is None

    def test_cli_rejects_unknown_schedule_with_registry_message(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["protest", "cell.txt", "--schedule", "turbo"])
        stderr = capsys.readouterr().err
        assert "unknown schedule 'turbo'; available schedules: " + ", ".join(
            SCHEDULES
        ) in stderr


class TestTuningErrorPaths:
    """The --tune error contract: unknown plan names/paths and
    malformed profile JSON raise the tuning module's exact message on
    every entry point, drift-tested like ENGINE_CHOICES and
    SCHEDULE_CHOICES."""

    UNKNOWN = "no/such/profile.json"

    @pytest.fixture()
    def malformed_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{definitely not json")
        return str(path)

    def _exact_message(self, spec):
        with pytest.raises(ValueError) as excinfo:
            resolve_plan(spec)
        return str(excinfo.value)

    def test_unknown_plan_message_lists_available_plans(self):
        assert self._exact_message(self.UNKNOWN) == (
            f"unknown tuning plan {self.UNKNOWN!r}; available plans: "
            + ", ".join(available_tunings())
            + " (or a tuning-profile JSON path)"
        )
        assert list(available_tunings()) == sorted(available_tunings())

    def test_fault_simulate_rejects_bad_plans_on_every_engine(
        self, malformed_path
    ):
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        unknown = self._exact_message(self.UNKNOWN)
        malformed = self._exact_message(malformed_path)
        assert malformed.startswith(f"invalid tuning profile {malformed_path!r}")
        for engine in ENGINES:
            for spec, message in ((self.UNKNOWN, unknown), (malformed_path, malformed)):
                with pytest.raises(ValueError) as excinfo:
                    fault_simulate(network, patterns, engine=engine, tune=spec)
                assert str(excinfo.value) == message, engine

    def test_difference_words_rejects_bad_plans_on_every_engine(
        self, malformed_path
    ):
        """The estimator path enters through ``Engine.difference_words``,
        which bypasses ``fault_simulate``'s up-front check - the serial
        engines must still reject bad plans there too."""
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        faults = all_faults(network)
        for engine in ENGINES:
            for spec in (self.UNKNOWN, malformed_path):
                with pytest.raises(ValueError) as excinfo:
                    get_engine(engine).difference_words(
                        network, patterns, faults, tune=spec
                    )
                assert str(excinfo.value) == self._exact_message(spec), engine

    def test_estimators_and_facade_reject_bad_plans(self, malformed_path):
        from repro.protest import (
            Protest,
            detection_probabilities,
            monte_carlo_detection_probabilities,
            optimize_input_probabilities,
        )

        network = and_cone(3)
        for spec in (self.UNKNOWN, malformed_path):
            message = self._exact_message(spec)
            for entry in (
                lambda: coverage_curve(
                    network, PatternSet.exhaustive(network.inputs), tune=spec
                ),
                lambda: monte_carlo_detection_probabilities(
                    network, all_faults(network), samples=8, tune=spec
                ),
                lambda: detection_probabilities(network, tune=spec),
                lambda: optimize_input_probabilities(
                    network, max_sweeps=1, tune=spec
                ),
                lambda: Protest(network, tune=spec).validate(8),
            ):
                with pytest.raises(ValueError) as excinfo:
                    entry()
                assert str(excinfo.value) == message

    def test_cli_tune_choices_match_module(self):
        from repro.cli import TUNE_CHOICES

        assert tuple(sorted(TUNE_CHOICES)) == available_tunings()

    def test_cli_rejects_bad_plans_with_module_message(
        self, capsys, malformed_path
    ):
        from repro.cli import build_parser

        parser = build_parser()
        for spec in (self.UNKNOWN, malformed_path):
            with pytest.raises(SystemExit):
                parser.parse_args(["protest", "cell.txt", "--tune", spec])
            assert self._exact_message(spec) in capsys.readouterr().err

    def test_cli_accepts_builtin_plans_and_profile_paths(self, tmp_path):
        from repro.cli import TUNE_CHOICES, build_parser

        parser = build_parser()
        for tune in TUNE_CHOICES:
            args = parser.parse_args(["protest", "cell.txt", "--tune", tune])
            assert args.tune == tune
        path = str(tmp_path / "host.json")
        resolve_plan("default").profile.save(path)
        assert parser.parse_args(
            ["protest", "cell.txt", "--tune", path]
        ).tune == path
        assert parser.parse_args(["protest", "cell.txt"]).tune is None


class TestEstimatorsAcrossEngines:
    def test_monte_carlo_estimators_identical_across_engines(self):
        from repro.protest import (
            monte_carlo_detection_probabilities,
            monte_carlo_signal_probabilities,
        )

        network = domino_carry_chain(3)
        faults = network.enumerate_faults()
        reference_detect = monte_carlo_detection_probabilities(
            network, faults, samples=512, engine="interpreted"
        )
        reference_signal = monte_carlo_signal_probabilities(
            network, samples=512, engine="interpreted"
        )
        for engine in ENGINES:
            assert monte_carlo_detection_probabilities(
                network, faults, samples=512, engine=engine
            ) == reference_detect, engine
            assert monte_carlo_signal_probabilities(
                network, samples=512, engine=engine
            ) == reference_signal, engine

    def test_coverage_curve_identical_across_engines(self):
        network = domino_carry_chain(3)
        patterns = PatternSet.random(network.inputs, 128, seed=10)
        reference = coverage_curve(network, patterns, points=8, engine="interpreted")
        for engine in ENGINES:
            assert (
                coverage_curve(network, patterns, points=8, engine=engine)
                == reference
            ), engine

    def test_protest_facade_identical_across_engines(self):
        from repro.protest import Protest

        network = domino_carry_chain(3)
        reference = Protest(network, engine="interpreted").validate(200, seed=7)
        for engine in ENGINES:
            results_identical(
                Protest(network, engine=engine, jobs=2).validate(200, seed=7),
                reference,
            )

    def test_protest_facade_identical_across_schedules(self):
        from repro.protest import Protest

        network = skewed_cone_network(depth=5, islands=3)
        reference = Protest(network, engine="interpreted").validate(200, seed=7)
        for schedule in SCHEDULES:
            for engine in ("vector", "sharded+vector"):
                results_identical(
                    Protest(
                        network, engine=engine, jobs=2, schedule=schedule
                    ).validate(200, seed=7),
                    reference,
                )

    def test_protest_facade_identical_across_tuning_plans(self, tuning_specs):
        from repro.protest import Protest

        network = skewed_cone_network(depth=5, islands=3)
        reference = Protest(network, engine="interpreted").validate(200, seed=7)
        for tuning in TUNINGS:
            for engine in ("compiled", "vector", "sharded+vector"):
                results_identical(
                    Protest(
                        network, engine=engine, jobs=2,
                        tune=tuning_specs[tuning],
                    ).validate(200, seed=7),
                    reference,
                )

    def test_monte_carlo_estimators_identical_across_tuning_plans(
        self, tuning_specs
    ):
        from repro.protest import monte_carlo_detection_probabilities

        network = skewed_cone_network(depth=5, islands=3)
        faults = all_faults(network)
        reference = monte_carlo_detection_probabilities(
            network, faults, samples=512, engine="interpreted"
        )
        for tuning in TUNINGS:
            for engine in ("compiled", "vector", "sharded+vector"):
                assert monte_carlo_detection_probabilities(
                    network, faults, samples=512, engine=engine,
                    tune=tuning_specs[tuning],
                ) == reference, (engine, tuning)

    def test_monte_carlo_estimator_identical_under_collapse(self):
        """Class members have identical difference words, so the
        collapsed Monte-Carlo estimate matches the uncollapsed one
        exactly on every engine."""
        from repro.protest import monte_carlo_detection_probabilities

        network = skewed_cone_network(depth=5, islands=3)
        faults = all_faults(network)
        reference = monte_carlo_detection_probabilities(
            network, faults, samples=512, engine="interpreted"
        )
        for engine in ENGINES:
            assert monte_carlo_detection_probabilities(
                network, faults, samples=512, engine=engine, collapse="on"
            ) == reference, engine

    def test_protest_facade_identical_under_collapse(self):
        from repro.protest import Protest

        network = domino_carry_chain(3)
        reference = Protest(network, engine="interpreted").validate(200, seed=7)
        for collapse in ("on", "report"):
            for engine in ("compiled", "vector"):
                results_identical(
                    Protest(network, engine=engine, collapse=collapse).validate(
                        200, seed=7
                    ),
                    reference,
                )


# --- the streaming pattern-source dimension ----------------------------------------


def _streaming_source(kind, names, count, seed):
    """One registered source per sweep name (the 'set' adapter wraps the
    lfsr source's own materialisation, so adapter != trivial identity)."""
    if kind == "lfsr":
        return LfsrSource(names, count, seed=seed)
    if kind == "weighted":
        probabilities = {
            name: probability
            for name, probability in zip(names, (0.25, 0.75, 0.5, 0.125, 0.875))
        }
        return WeightedSource(names, count, probabilities=probabilities, seed=seed)
    if kind == "random":
        return RandomSource(names, count, seed=seed)
    assert kind == "set"
    return PatternSetSource(LfsrSource(names, count, seed=seed).materialise())


SOURCE_KINDS = available_sources()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("kind", SOURCE_KINDS)
class TestStreamingSourcesAcrossEngines:
    """The tentpole contract: a lane-native streaming source is
    bit-identical to the equivalent fully-materialised ``PatternSet``
    on every registered engine - the windows a source generates on
    demand (GF(2)-jumped LFSR banks, NLFSR lane words) must carry
    exactly the bits the serial register stream would have produced."""

    def test_source_identical_to_materialised(self, engine, kind):
        network = skewed_cone_network(depth=6, islands=4)
        source = _streaming_source(kind, network.inputs, 3 * 64 + 37, seed=21)
        faults = all_faults(network)
        results_identical(
            fault_simulate(network, source, faults, engine=engine, jobs=2),
            _cached_oracle(
                ("stream", kind), network, source.materialise(), faults
            ),
        )

    def test_source_first_detection_identical(self, engine, kind):
        network = skewed_cone_network(depth=6, islands=4)
        source = _streaming_source(
            kind, network.inputs, FIRST_DETECTION_CHUNK + 32, seed=23
        )
        faults = all_faults(network)
        results_identical(
            fault_simulate(
                network, source, faults, engine=engine, jobs=2,
                stop_at_first_detection=True,
            ),
            _cached_oracle(
                ("stream-first", kind), network, source.materialise(), faults,
                stop_at_first_detection=True,
            ),
        )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("schedule", SCHEDULES)
@pytest.mark.parametrize("tuning", TUNINGS)
def test_lfsr_source_identical_over_schedule_plan_sweep(
    engine, schedule, tuning, tuning_specs
):
    """The source seam composes with the full engine x schedule x plan
    sweep: re-ordering and re-tiling windowed passes over generated (not
    materialised) windows never moves a bit."""
    network = skewed_cone_network(depth=6, islands=4)
    source = LfsrSource(network.inputs, 230, seed=29)
    faults = all_faults(network)
    results_identical(
        fault_simulate(
            network, source, faults, engine=engine, jobs=2,
            schedule=schedule, tune=tuning_specs[tuning],
        ),
        _cached_oracle(
            "stream-sweep", network, source.materialise(), faults
        ),
    )


@settings(max_examples=8)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=300),
    source_seed=st.integers(min_value=1, max_value=255),
    engine=st.sampled_from(ENGINES),
    kind=st.sampled_from(SOURCE_KINDS),
)
def test_property_sources_identical_to_materialised(
    seed, count, source_seed, engine, kind
):
    """Property: every registered source is bit-identical to its own
    materialisation on every engine, for arbitrary circuits and pattern
    budgets (word-boundary straddles included)."""
    network = random_network(n_inputs=5, n_gates=9, seed=seed)
    source = _streaming_source(kind, network.inputs, count, seed=source_seed)
    faults = all_faults(network)
    results_identical(
        fault_simulate(network, source, faults, engine=engine),
        oracle_result(network, source.materialise(), faults),
    )


_STREAMING_REFERENCE = {}


@pytest.mark.parametrize("engine", ENGINES)
def test_streaming_coverage_stopping_point_identical(engine):
    """The confidence-stopped session is engine-independent: the window
    grid is pinned to FIRST_DETECTION_CHUNK everywhere, so every engine
    consumes the same number of patterns, retires the same fault weight
    and reports the same curve."""
    network = skewed_cone_network(depth=6, islands=4)
    result = streaming_coverage(
        network,
        LfsrSource(network.inputs, 4 * FIRST_DETECTION_CHUNK, seed=5),
        all_faults(network),
        target_coverage=0.7,
        confidence=0.95,
        engine=engine,
        jobs=2,
    )
    reference = _STREAMING_REFERENCE.setdefault(
        "skew",
        streaming_coverage(
            network,
            LfsrSource(network.inputs, 4 * FIRST_DETECTION_CHUNK, seed=5),
            all_faults(network),
            target_coverage=0.7,
            confidence=0.95,
            engine="interpreted",
        ),
    )
    assert result.pattern_count == reference.pattern_count
    assert result.detected_weight == reference.detected_weight
    assert result.satisfied == reference.satisfied
    assert result.curve == reference.curve
    assert result.lower_bound == reference.lower_bound


def _streaming_reference():
    network = skewed_cone_network(depth=6, islands=4)
    return network, _STREAMING_REFERENCE.setdefault(
        "skew",
        streaming_coverage(
            network,
            LfsrSource(network.inputs, 4 * FIRST_DETECTION_CHUNK, seed=5),
            all_faults(network),
            target_coverage=0.7,
            confidence=0.95,
            engine="interpreted",
        ),
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("schedule", SCHEDULES)
@pytest.mark.parametrize("tuning", TUNINGS)
@pytest.mark.parametrize("collapse", ("off", "on"))
def test_streaming_session_stopping_window_full_sweep(
    engine, schedule, tuning, collapse, tuning_specs
):
    """Sessions run *through* the engines' batched window cores now, so
    the stopping window must survive the whole differential sweep:
    every engine x schedule x plan x collapse combination consumes the
    same number of patterns, retires the same weight and reports the
    same curve as the interpreted consumer - scheduling only reorders
    work, plans only re-tile it, collapse only deduplicates it."""
    network, reference = _streaming_reference()
    result = streaming_coverage(
        network,
        LfsrSource(network.inputs, 4 * FIRST_DETECTION_CHUNK, seed=5),
        all_faults(network),
        target_coverage=0.7,
        confidence=0.95,
        engine=engine,
        jobs=2,
        schedule=schedule,
        tune=tuning_specs[tuning],
        collapse=collapse,
    )
    assert result.pattern_count == reference.pattern_count
    assert result.detected_weight == reference.detected_weight
    assert result.total_weight == reference.total_weight
    assert result.satisfied == reference.satisfied
    assert result.curve == reference.curve
    assert result.lower_bound == reference.lower_bound


class TestSourceRegistryErrorPaths:
    """The --source error contract, drift-tested like the other
    registries."""

    def test_unknown_source_message_lists_sorted_available_sources(self):
        with pytest.raises(ValueError) as excinfo:
            get_source("turbo")
        assert str(excinfo.value) == (
            "unknown pattern source 'turbo'; available pattern sources: "
            + ", ".join(SOURCE_KINDS)
        )
        assert list(SOURCE_KINDS) == sorted(SOURCE_KINDS)

    def test_set_source_requires_a_pattern_set(self):
        from repro.simulate import make_source

        with pytest.raises(ValueError, match="needs an explicit pattern set"):
            make_source("set", ("a", "b"), 16)

    def test_cli_source_choices_match_registry(self):
        from repro.cli import SOURCE_CHOICES

        assert tuple(sorted(SOURCE_CHOICES)) == SOURCE_KINDS

    def test_cli_rejects_unknown_source_with_registry_message(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["protest", "cell.txt", "--source", "turbo"])
        stderr = capsys.readouterr().err
        assert (
            "unknown pattern source 'turbo'; available pattern sources: "
            + ", ".join(SOURCE_KINDS)
        ) in stderr

    def test_cli_accepts_every_registered_source(self):
        from repro.cli import SOURCE_CHOICES, build_parser

        parser = build_parser()
        for kind in SOURCE_CHOICES:
            args = parser.parse_args(["protest", "cell.txt", "--source", kind])
            assert args.source == kind
        defaults = parser.parse_args(["protest", "cell.txt"])
        assert defaults.source == "lfsr"
        assert defaults.stop_confidence is None
        assert defaults.target_coverage == 0.99
