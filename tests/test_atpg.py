"""Tests for PODEM, miters, two-pattern generation, and test strategies."""

import pytest

from repro.atpg import (
    a2_satisfaction_probability,
    apply_twice,
    build_miter,
    charges_and_discharges_every_node,
    compact_test_set,
    generate_test,
    generate_test_set,
    generate_two_pattern_test,
    network_to_primitives,
    single_vector_coverage_of_stuck_opens,
    validate_two_pattern_test,
)
from repro.atpg.podem import PodemEngine
from repro.atpg.primitives import PrimitiveNetwork
from repro.circuits.generators import and_cone, c17, domino_carry_chain
from repro.logic.values import ONE, X, ZERO
from repro.netlist import CellFactory, Network, NetworkFault, stuck_open_faults_of_gate
from repro.simulate import PatternSet, fault_simulate


class TestPrimitives:
    def test_ternary_evaluation(self):
        primitive = PrimitiveNetwork()
        primitive.add_input("a")
        primitive.add_input("b")
        root = primitive.add_node("and", ("a", "b"), name="out")
        assert primitive.evaluate({"a": 1, "b": 1})["out"] == ONE
        assert primitive.evaluate({"a": 0})["out"] == ZERO  # controlling value
        assert primitive.evaluate({"a": 1})["out"] == X

    def test_network_decomposition_equivalence(self):
        network = domino_carry_chain(2)
        primitive, net_map = network_to_primitives(network)
        patterns = PatternSet.exhaustive(network.inputs)
        for vector in patterns.vectors():
            gate_values = network.evaluate(vector)
            primitive_values = primitive.evaluate(vector)
            for net in network.outputs:
                assert primitive_values[net_map[net]] == gate_values[net]

    def test_miter_fires_exactly_on_tests(self):
        network = domino_carry_chain(2)
        fault = NetworkFault.stuck_at("c1", 0)
        primitive, root, _, _ = build_miter(network, fault)
        for vector in PatternSet.exhaustive(network.inputs).vectors():
            good = network.evaluate(vector)
            bad = network.evaluate(vector, fault)
            differs = any(good[n] != bad[n] for n in network.outputs)
            assert primitive.evaluate(vector)[root] == (ONE if differs else ZERO)

    def test_controllability_sane(self):
        primitive = PrimitiveNetwork()
        for name in ("a", "b", "c"):
            primitive.add_input(name)
        and_node = primitive.add_node("and", ("a", "b", "c"))
        cost = primitive.controllability()
        c0, c1 = cost[and_node]
        assert c1 > c0  # setting a 3-AND to 1 is harder than to 0


class TestPodem:
    def test_every_carry_fault_testable(self):
        network = domino_carry_chain(3)
        for fault in network.enumerate_faults():
            result = generate_test(network, fault)
            assert result.detected, fault.describe()
            good = network.evaluate(result.test)
            bad = network.evaluate(result.test, fault)
            assert any(good[n] != bad[n] for n in network.outputs)

    def test_redundant_fault_proved(self):
        factory = CellFactory("domino-CMOS")
        network = Network("redundant")
        network.add_input("a")
        network.add_input("b")
        network.add_gate("g1", factory.and_gate(2), {"i1": "a", "i2": "b"}, "n1")
        # z = b: n1 unobservable -> all g1 faults redundant.
        network.add_gate(
            "g2", factory.cell("snd", "i2", ["i1", "i2"]), {"i1": "n1", "i2": "b"}, "z"
        )
        network.mark_output("z")
        fault = network.enumerate_faults()[0]
        assert fault.gate == "g1"
        result = generate_test(network, fault)
        assert result.redundant and not result.detected

    def test_test_set_reaches_full_coverage(self):
        network = c17()
        test_set = generate_test_set(network)
        assert not test_set.aborted
        patterns = PatternSet.from_vectors(network.inputs, test_set.tests)
        result = fault_simulate(network, patterns)
        assert result.coverage == 1.0

    def test_fault_dropping_reduces_vectors(self):
        network = domino_carry_chain(4)
        with_dropping = generate_test_set(network, fault_dropping=True)
        without = generate_test_set(network, fault_dropping=False)
        assert with_dropping.vector_count <= without.vector_count

    def test_wide_cone_justified(self):
        # 12-input AND requires all-ones: backtrace must find it quickly.
        network = and_cone(12)
        faults = [f for f in network.enumerate_faults() if "CMOS-4" in f.label]
        result = generate_test(network, faults[0])
        assert result.detected
        assert result.decisions < 200


class TestTwoPattern:
    def _static_nor(self):
        factory = CellFactory("static-CMOS")
        network = Network("nor")
        network.add_input("a")
        network.add_input("b")
        network.add_gate("nor", factory.or_gate(2), {"i1": "a", "i2": "b"}, "z")
        network.mark_output("z")
        return network

    def test_all_nor_stuck_opens_get_valid_pairs(self):
        network = self._static_nor()
        for fault in stuck_open_faults_of_gate(network, "nor"):
            pair = generate_two_pattern_test(network, fault)
            assert pair is not None, fault.label
            assert validate_two_pattern_test(network, fault, pair)

    def test_pair_ordering_matters(self):
        network = self._static_nor()
        fault = next(
            f
            for f in stuck_open_faults_of_gate(network, "nor")
            if f.float_condition.value({"i1": 1, "i2": 0})
        )
        pair = generate_two_pattern_test(network, fault)
        assert pair is not None
        # Swapped order must NOT give a definite detection.
        from repro.netlist import SequentialFaultSimulator

        simulator = SequentialFaultSimulator(network, fault)
        simulator.apply(pair.test_vector)
        outputs = simulator.apply(pair.init_vector)
        good = network.evaluate(pair.init_vector)
        assert not any(
            outputs[n] in (0, 1) and outputs[n] != good[n] for n in network.outputs
        )

    def test_single_vector_sets_can_miss_stuck_opens(self):
        network = self._static_nor()
        faults = stuck_open_faults_of_gate(network, "nor")
        # A deliberately bad ordering that never initialises properly.
        vectors = [{"a": 1, "b": 0}, {"a": 1, "b": 1}]
        caught, total = single_vector_coverage_of_stuck_opens(network, faults, vectors)
        assert caught < total


class TestStrategies:
    def test_apply_twice_doubles(self):
        patterns = PatternSet.exhaustive(("a", "b"))
        assert apply_twice(patterns).count == 8

    def test_a2_check(self):
        network = domino_carry_chain(3)
        assert charges_and_discharges_every_node(
            network, PatternSet.exhaustive(network.inputs)
        )
        # A single pattern cannot toggle anything.
        single = PatternSet.from_vectors(
            network.inputs, [{n: 0 for n in network.inputs}]
        )
        assert not charges_and_discharges_every_node(network, single)

    def test_a2_probability_high_for_long_random(self):
        network = domino_carry_chain(3)
        assert a2_satisfaction_probability(network, 64, trials=20) >= 0.95

    def test_compaction_preserves_coverage(self):
        network = domino_carry_chain(3)
        patterns = PatternSet.random(network.inputs, 64)
        compacted = compact_test_set(network, list(patterns.vectors()))
        assert len(compacted) <= patterns.count
        before = fault_simulate(network, patterns)
        after = fault_simulate(
            network, PatternSet.from_vectors(network.inputs, compacted)
        )
        assert after.coverage == before.coverage
