"""Tests for the extension modules: leakage (IDDQ), cutting bounds, CLI."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.generators import random_network
from repro.logic.parser import parse_expression
from repro.protest import cutting_report, cutting_signal_bounds
from repro.protest.signalprob import (
    exact_signal_probabilities,
    topological_signal_probabilities,
)
from repro.simulate.leakage import gate_leakage_profile, iddq_analysis, supply_current
from repro.simulate.timingsim import TimingSimulator
from repro.switchlevel.network import FaultKind, PhysicalFault
from repro.tech import DominoCmosGate
from repro.tech.domino_cmos import FOOT_SWITCH, PRECHARGE_SWITCH


class TestLeakage:
    def test_fault_free_draws_no_static_current(self):
        gate = DominoCmosGate(parse_expression("a*b"))
        profile = gate_leakage_profile(gate)
        # Only the tiny A1 leak remains: orders below one conducting path.
        assert profile.max_current < 0.01

    def test_cmos3_leaks_on_discharging_vectors_only(self):
        gate = DominoCmosGate(parse_expression("a*b"), precharge_resistance=4.0)
        fault = PhysicalFault(FaultKind.TRANSISTOR_CLOSED, switch=PRECHARGE_SWITCH)
        profile = gate_leakage_profile(gate, fault)
        leaky = [
            vector for vector, pre, evaluate in profile.per_vector
            if max(pre, evaluate) > 0.05
        ]
        assert leaky == [{"a": 1, "b": 1}]  # only the conducting SN leaks

    def test_cmos1_silent_under_domino_discipline(self):
        gate = DominoCmosGate(parse_expression("a*b"))
        fault = PhysicalFault(FaultKind.TRANSISTOR_CLOSED, switch=FOOT_SWITCH)
        clean = gate_leakage_profile(gate)
        faulty = gate_leakage_profile(gate, fault)
        assert faulty.max_current == pytest.approx(clean.max_current, rel=0.2)

    def test_iddq_analysis_verdicts(self):
        gate = DominoCmosGate(parse_expression("a*b"), precharge_resistance=4.0)
        faults = [
            ("cmos3", PhysicalFault(FaultKind.TRANSISTOR_CLOSED, switch=PRECHARGE_SWITCH)),
            ("cmos2", PhysicalFault(FaultKind.TRANSISTOR_OPEN, switch=FOOT_SWITCH)),
        ]
        verdicts = {v.fault_label: v for v in iddq_analysis(gate, faults)}
        assert verdicts["cmos3"].detectable
        assert not verdicts["cmos2"].detectable
        assert 0.0 < verdicts["cmos3"].leaky_vector_fraction < 1.0

    def test_supply_current_nonnegative(self):
        gate = DominoCmosGate(parse_expression("a+b"))
        simulator = TimingSimulator(gate.circuit)
        simulator.step({"phi": 0, "a": 0, "b": 0}, 10.0)
        assert supply_current(simulator) >= 0.0


class TestCuttingBounds:
    def test_bounds_contain_exact_on_random_networks(self):
        for seed in range(8):
            network = random_network(seed=seed)
            bounds = cutting_signal_bounds(network)
            exact = exact_signal_probabilities(network)
            for net in network.nets():
                assert bounds[net].contains(exact[net]), (network.name, net)

    def test_bounds_tight_on_fanout_free(self):
        from repro.circuits.generators import and_cone

        network = and_cone(4)
        bounds = cutting_signal_bounds(network)
        exact = exact_signal_probabilities(network)
        for net in network.nets():
            assert bounds[net].width < 1e-9
            assert bounds[net].contains(exact[net])

    def test_point_estimate_can_leave_bounds_violating_nothing(self):
        # The topological estimate lies inside [0,1] but not necessarily
        # inside the certified interval; the exact value always is.
        network = random_network(seed=3)
        bounds = cutting_signal_bounds(network)
        topo = topological_signal_probabilities(network)
        exact = exact_signal_probabilities(network)
        for net in network.nets():
            assert bounds[net].contains(exact[net])
            assert 0.0 <= topo[net] <= 1.0

    def test_report_renders(self):
        network = random_network(seed=1)
        text = cutting_report(network)
        assert "cutting-algorithm bounds" in text
        assert "VIOLATION" not in text

    def test_interval_validation(self):
        from repro.protest.cutting import Interval

        with pytest.raises(ValueError):
            Interval(0.7, 0.3)

    def test_wide_cell_past_corner_budget_stays_sound(self):
        """Regression: a cell whose wide-interval pins span more corners
        than the budget used to get a silently *truncated* min/max -
        not an enclosure.  It must widen to FULL instead.

        One stem feeding all 14 pins of a wide AND gives 13 cut (FULL)
        pins after the first branch: 2^13 = 8192 corners, past the 4096
        budget.  The true function collapses to the stem itself, so the
        exact probability is 0.5 - which the truncated corner walk
        excluded (every enumerated corner had some pin at 0, yielding
        the unsound interval [0, 0])."""
        from repro.netlist import CellFactory, Network
        from repro.protest import FULL

        factory = CellFactory("domino-CMOS")
        wide = factory.and_gate(14)
        network = Network("wide_cell")
        network.add_input("s")
        network.add_gate("g", wide, {pin: "s" for pin in wide.inputs}, "z")
        network.mark_output("z")
        bounds = cutting_signal_bounds(network)
        assert bounds["z"] == FULL
        assert bounds["z"].contains(0.5)  # exact P(z=1) = P(s=1) = 0.5

    def test_corner_budget_counts_only_wide_pins(self):
        """Point intervals contribute one corner, so a wide gate with
        few *cut* pins still gets the exact (non-FULL) enclosure."""
        from repro.netlist import CellFactory, Network

        factory = CellFactory("domino-CMOS")
        wide = factory.and_gate(14)
        network = Network("wide_cell_free")
        connections = {}
        for position, pin in enumerate(wide.inputs):
            net = f"s{position}"
            network.add_input(net)
            connections[pin] = net
        network.add_gate("g", wide, connections, "z")
        network.mark_output("z")
        bounds = cutting_signal_bounds(network)
        # Fanout-free: every pin keeps its point interval -> exact point.
        assert bounds["z"].width < 1e-9
        assert bounds["z"].contains(0.5 ** 14)


class TestCli:
    CELL = (
        "TECHNOLOGY domino-CMOS;\n"
        "INPUT a,b;\n"
        "OUTPUT z;\n"
        "z := a*b;\n"
    )

    def test_library_command(self, tmp_path, capsys):
        from repro.cli import main

        cellfile = tmp_path / "and2.cell"
        cellfile.write_text(self.CELL)
        emitted = tmp_path / "lib.py"
        assert main(["library", str(cellfile), "--emit-python", str(emitted)]) == 0
        output = capsys.readouterr().out
        assert "Class" in output
        namespace: dict = {}
        exec(emitted.read_text(), namespace)  # noqa: S102
        assert namespace["fault_free"](a=1, b=1) == 1

    def test_experiments_command(self, capsys):
        from repro.cli import main

        assert main(["experiments", "E5"]) == 0
        assert "E5" in capsys.readouterr().out

    def test_experiments_unknown_id(self, capsys):
        from repro.cli import main

        assert main(["experiments", "E99"]) == 2

    def test_protest_command(self, tmp_path, capsys):
        from repro.cli import main

        cellfile = tmp_path / "and2.cell"
        cellfile.write_text(self.CELL)
        assert main(["protest", str(cellfile)]) == 0
        assert "PROTEST report" in capsys.readouterr().out

    def test_figures_command(self, capsys):
        from repro.cli import main

        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "Z(t)" in output and "Fig. 9" in output
