"""Unit tests for switch-level circuit structures and fault injection."""

import pytest

from repro.switchlevel.network import (
    VDD,
    VSS,
    DeviceType,
    FaultKind,
    NodeKind,
    PhysicalFault,
    Switch,
    SwitchCircuit,
)


def simple_inverter() -> SwitchCircuit:
    circuit = SwitchCircuit("inv")
    circuit.add_port("a")
    circuit.add_internal("z")
    circuit.add_switch("p", DeviceType.PMOS, "a", VDD, "z")
    circuit.add_switch("n", DeviceType.NMOS, "a", "z", VSS)
    return circuit


class TestSwitch:
    def test_nmos_conduction(self):
        switch = Switch("t", DeviceType.NMOS, "g", "a", "b")
        assert switch.conducts(1) is True
        assert switch.conducts(0) is False
        assert switch.conducts(2) is None  # X gate

    def test_pmos_conduction(self):
        switch = Switch("t", DeviceType.PMOS, "g", "a", "b")
        assert switch.conducts(0) is True
        assert switch.conducts(1) is False

    def test_always_and_never(self):
        assert Switch("w", DeviceType.ALWAYS_ON, None, "a", "b").conducts(0) is True
        assert Switch("w", DeviceType.NEVER_ON, None, "a", "b").conducts(1) is False

    def test_gate_required(self):
        with pytest.raises(ValueError):
            Switch("t", DeviceType.NMOS, None, "a", "b")


class TestCircuitConstruction:
    def test_supplies_exist(self):
        circuit = SwitchCircuit()
        assert circuit.nodes[VDD] is NodeKind.SUPPLY_VDD
        assert circuit.nodes[VSS] is NodeKind.SUPPLY_VSS

    def test_duplicate_switch_rejected(self):
        circuit = simple_inverter()
        with pytest.raises(ValueError):
            circuit.add_switch("p", DeviceType.PMOS, "a", VDD, "z")

    def test_unknown_node_rejected(self):
        circuit = SwitchCircuit()
        with pytest.raises(KeyError):
            circuit.add_switch("t", DeviceType.NMOS, "ghost", VDD, VSS)

    def test_kind_conflict_rejected(self):
        circuit = SwitchCircuit()
        circuit.add_port("a")
        with pytest.raises(ValueError):
            circuit.add_internal("a")

    def test_depletion_is_weak(self):
        circuit = SwitchCircuit()
        circuit.add_internal("z")
        switch = circuit.add_switch("load", DeviceType.DEPLETION, None, VDD, "z")
        assert switch.weak

    def test_transistor_count_ignores_wires(self):
        circuit = simple_inverter()
        circuit.add_switch("w", DeviceType.ALWAYS_ON, None, "z", "z")
        assert circuit.transistor_count() == 2


class TestFaultInjection:
    def test_transistor_open(self):
        circuit = simple_inverter()
        faulty = circuit.with_fault(PhysicalFault(FaultKind.TRANSISTOR_OPEN, switch="n"))
        assert faulty.switch("n").dtype is DeviceType.NEVER_ON
        # Original untouched.
        assert circuit.switch("n").dtype is DeviceType.NMOS

    def test_transistor_closed(self):
        circuit = simple_inverter()
        faulty = circuit.with_fault(PhysicalFault(FaultKind.TRANSISTOR_CLOSED, switch="p"))
        assert faulty.switch("p").dtype is DeviceType.ALWAYS_ON

    def test_terminal_open_creates_dangling_node(self):
        circuit = simple_inverter()
        fault = PhysicalFault(FaultKind.LINE_OPEN_TERMINAL, switch="n", terminal="a")
        faulty = circuit.with_fault(fault)
        assert faulty.switch("n").a != "z"
        assert faulty.switch("n").a in faulty.nodes

    def test_gate_open_creates_floating_gate(self):
        circuit = simple_inverter()
        fault = PhysicalFault(FaultKind.LINE_OPEN_GATE, switch="n")
        faulty = circuit.with_fault(fault)
        assert faulty.switch("n").gate != "a"

    def test_node_open_detaches_everything(self):
        circuit = simple_inverter()
        faulty = circuit.with_fault(PhysicalFault(FaultKind.NODE_OPEN, node="z"))
        assert faulty.switch("n").a != "z"
        assert faulty.switch("p").b != "z"

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            PhysicalFault(FaultKind.TRANSISTOR_OPEN)
        with pytest.raises(ValueError):
            PhysicalFault(FaultKind.LINE_OPEN_TERMINAL, switch="n", terminal="c")
        with pytest.raises(ValueError):
            PhysicalFault(FaultKind.NODE_OPEN)

    def test_enumerate_faults(self):
        circuit = simple_inverter()
        faults = list(circuit.enumerate_faults())
        kinds = [f.kind for f in faults]
        assert kinds.count(FaultKind.TRANSISTOR_OPEN) == 2
        assert kinds.count(FaultKind.TRANSISTOR_CLOSED) == 2
        assert kinds.count(FaultKind.LINE_OPEN_GATE) == 2
        assert kinds.count(FaultKind.LINE_OPEN_TERMINAL) == 4

    def test_describe(self):
        fault = PhysicalFault(FaultKind.TRANSISTOR_OPEN, switch="n")
        assert "n" in fault.describe()


class TestMerge:
    def test_merge_renames_and_binds(self):
        inv1 = simple_inverter()
        inv2 = simple_inverter()
        top = SwitchCircuit("buf")
        top.add_port("x")
        mapping1 = top.merge(inv1, "u1_", bindings={"a": "x"})
        mapping2 = top.merge(inv2, "u2_", bindings={"a": mapping1["z"]})
        assert mapping1["z"] == "u1_z"
        assert top.switch("u2_n").gate == "u1_z"
        assert top.switch("u1_n").gate == "x"

    def test_merge_bad_binding(self):
        top = SwitchCircuit()
        with pytest.raises(KeyError):
            top.merge(simple_inverter(), "u_", bindings={"a": "nonexistent"})
