"""Fault-parallel simulation must agree with serial and deductive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.generators import (
    and_cone,
    c17,
    domino_carry_chain,
    dual_rail_parity_tree,
    random_network,
)
from repro.netlist import NetworkFault
from repro.simulate import (
    PatternSet,
    deductive_fault_simulate,
    fault_simulate,
    parallel_fault_simulate,
)


@pytest.mark.parametrize(
    "make",
    [
        lambda: domino_carry_chain(3),
        lambda: c17(),
        lambda: and_cone(5),
        lambda: dual_rail_parity_tree(4),
    ],
)
def test_three_algorithms_agree(make):
    """The paper's trio (parallel / deductive) against the serial oracle."""
    network = make()
    patterns = PatternSet.random(network.inputs, 40, seed=23)
    faults = network.enumerate_faults(
        include_cell_classes=True, include_stuck_at=True
    )
    serial = fault_simulate(network, patterns, faults)
    parallel = parallel_fault_simulate(network, patterns, faults)
    deductive = deductive_fault_simulate(network, patterns, faults)
    assert serial.detected == parallel.detected == deductive.detected
    assert (
        serial.detection_counts
        == parallel.detection_counts
        == deductive.detection_counts
    )


def test_good_machine_preserved():
    """The packed word's good-machine bit must equal the plain simulation."""
    network = domino_carry_chain(2)
    patterns = PatternSet.exhaustive(network.inputs)
    faults = network.enumerate_faults()
    result = parallel_fault_simulate(network, patterns, faults)
    # indirect check: coverage identical to serial on exhaustive patterns
    serial = fault_simulate(network, patterns, faults)
    assert result.coverage == serial.coverage == 1.0


class TestInjectability:
    """Un-injectable faults must raise, never ride along undetected."""

    def test_stuck_on_unknown_net_raises(self):
        network = domino_carry_chain(2)
        patterns = PatternSet.exhaustive(network.inputs)
        ghost = NetworkFault.stuck_at("ghost", 1)
        with pytest.raises(ValueError, match="cannot be injected"):
            parallel_fault_simulate(network, patterns, [ghost])

    def test_cell_fault_on_unknown_gate_raises(self):
        network = domino_carry_chain(2)
        patterns = PatternSet.exhaustive(network.inputs)
        template = network.enumerate_faults()[0]
        orphan = NetworkFault.cell_fault(
            "no_such_gate", template.class_index, template.function
        )
        with pytest.raises(ValueError, match="cannot be injected"):
            parallel_fault_simulate(network, patterns, [orphan])


class TestLabelCollisions:
    def test_distinct_faults_sharing_a_label_raise(self):
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        colliding = [
            NetworkFault.stuck_at("a0", 0),
            NetworkFault(kind="stuck", net="a1", value=0, label="s0-a0"),
        ]
        with pytest.raises(ValueError, match="shared by two distinct"):
            parallel_fault_simulate(network, patterns, colliding)

    def test_duplicate_of_same_fault_reported_once(self):
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        fault = NetworkFault.stuck_at("a0", 0)
        single = parallel_fault_simulate(network, patterns, [fault])
        doubled = parallel_fault_simulate(network, patterns, [fault, fault])
        assert doubled.detected == single.detected
        assert doubled.detection_counts == single.detection_counts
        assert doubled.fault_count == single.fault_count


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_equivalence_on_random_networks(seed):
    network = random_network(n_inputs=6, n_gates=8, seed=seed)
    patterns = PatternSet.random(network.inputs, 20, seed=seed ^ 0x5555)
    serial = fault_simulate(network, patterns)
    parallel = parallel_fault_simulate(network, patterns)
    assert serial.detected == parallel.detected
    assert serial.detection_counts == parallel.detection_counts
