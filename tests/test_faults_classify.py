"""The heart of the reproduction: analytic classification vs simulation.

For every enumerated physical fault of every gate in a family, the
Section 3 classifier's prediction must match the measured behaviour of
the charge-aware switch-level simulator under A1/A2 - and nothing may
be sequential in the dynamic technologies.
"""

import pytest

from repro.faults.classify import classify
from repro.faults.collapse import collapse
from repro.faults.enumerate import enumerate_gate_faults
from repro.faults.logical import Classification, FaultCategory
from repro.logic.parser import parse_expression
from repro.logic.truthtable import TruthTable
from repro.logic.values import X
from repro.switchlevel.network import FaultKind, PhysicalFault
from repro.tech import DominoCmosGate, DynamicNmosGate, StaticCmosGate, StaticNmosGate

EXPRESSIONS = ["a*b", "a+b", "a*(b+c)", "a*b+c"]


def _check_gate(gate):
    mismatches = []
    for entry in enumerate_gate_faults(gate):
        prediction = classify(gate, entry.fault)
        if prediction.category in (FaultCategory.COMBINATIONAL, FaultCategory.BENIGN):
            table, raw = gate.faulty_function(entry.fault, allow_x=True)
            if any(v == X for v in raw.values()) or table != prediction.predicted:
                mismatches.append(entry.label)
        elif prediction.category is FaultCategory.UNDETECTABLE:
            table, raw = gate.faulty_function(entry.fault, allow_x=True)
            if table != prediction.predicted:
                mismatches.append(entry.label)
    return mismatches


@pytest.mark.parametrize("text", EXPRESSIONS)
def test_dynamic_nmos_classification_matches_simulation(text):
    gate = DynamicNmosGate(parse_expression(text))
    assert _check_gate(gate) == []


@pytest.mark.parametrize("text", EXPRESSIONS)
def test_domino_classification_matches_simulation(text):
    gate = DominoCmosGate(parse_expression(text))
    assert _check_gate(gate) == []


@pytest.mark.parametrize("text", EXPRESSIONS)
def test_static_nmos_classification_matches_simulation(text):
    gate = StaticNmosGate(parse_expression(text))
    assert _check_gate(gate) == []


def test_no_dynamic_fault_is_classified_sequential():
    for text in EXPRESSIONS:
        for gate in (DynamicNmosGate(parse_expression(text)), DominoCmosGate(parse_expression(text))):
            for entry in enumerate_gate_faults(gate):
                prediction = classify(gate, entry.fault)
                assert prediction.category is not FaultCategory.SEQUENTIAL, entry.label


def test_static_cmos_opens_are_sequential():
    gate = StaticCmosGate(parse_expression("a+b"))
    sequential = [
        entry.label
        for entry in enumerate_gate_faults(gate)
        if classify(gate, entry.fault).category is FaultCategory.SEQUENTIAL
    ]
    # every transistor open in a NOR floats the output somewhere
    assert len(sequential) == 4


def test_static_cmos_closed_are_ratio_dependent():
    gate = StaticCmosGate(parse_expression("a"))
    prediction = classify(
        gate, PhysicalFault(FaultKind.TRANSISTOR_CLOSED, switch="pu_T1")
    )
    assert prediction.category is FaultCategory.RATIO_DEPENDENT


def test_paper_fault_numbering_dynamic_nmos():
    gate = DynamicNmosGate(parse_expression("a*b"))
    labels = {
        classify(gate, entry.fault).label
        for entry in enumerate_gate_faults(gate, include_line_opens=False)
        if entry.group in ("SN", "precharge")
    }
    # n = 2: open T1/T2 -> nMOS-1/2; closed -> nMOS-3/4; T(n+1) -> nMOS-5/6.
    assert {"nMOS-1", "nMOS-2", "nMOS-3", "nMOS-4", "nMOS-5", "nMOS-6"} <= labels


def test_stuck_shorthand():
    gate = DynamicNmosGate(parse_expression("a*b"))
    prediction = classify(
        gate, PhysicalFault(FaultKind.TRANSISTOR_OPEN, switch="sn_T1")
    )
    assert prediction.stuck_name() == "s0-a"


def test_classifier_rejects_unknown_switch():
    gate = DominoCmosGate(parse_expression("a*b"))
    with pytest.raises(ValueError):
        classify(gate, PhysicalFault(FaultKind.TRANSISTOR_OPEN, switch="nope"))


class TestCollapse:
    def test_fig9_collapse_structure(self):
        gate = DominoCmosGate(parse_expression("a*(b+c)+d*e"))
        entries = enumerate_gate_faults(gate, include_line_opens=False)
        classified = [(e, classify(gate, e.fault)) for e in entries]
        fault_free = TruthTable.from_expr(gate.transmission, gate.inputs)
        result = collapse(fault_free, classified)
        assert result.class_count() == 10
        # CMOS-1 lands in the undetectable bucket.
        assert any("CMOS-1" in e.label for e, _ in result.undetectable)

    def test_collapse_rejects_missing_function(self):
        from repro.faults.enumerate import FaultEntry

        entry = FaultEntry("x", PhysicalFault(FaultKind.TRANSISTOR_OPEN, switch="s"))
        classification = Classification("x", FaultCategory.COMBINATIONAL)
        fault_free = TruthTable(("a",), 0b10)
        with pytest.raises(ValueError):
            collapse(fault_free, [(entry, classification)])

    def test_format_table_lists_classes(self):
        gate = DominoCmosGate(parse_expression("a*b"))
        entries = enumerate_gate_faults(gate, include_line_opens=False)
        classified = [(e, classify(gate, e.fault)) for e in entries]
        fault_free = TruthTable.from_expr(gate.transmission, gate.inputs)
        text = collapse(fault_free, classified).format_table()
        assert "Class" in text and "CMOS-4" in text
