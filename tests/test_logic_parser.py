"""Unit tests for the paper-syntax expression parser."""

import pytest

from repro.logic.expr import And, Const, Not, Or, Var
from repro.logic.parser import ExpressionSyntaxError, parse_expression, tokenize


class TestTokenizer:
    def test_tokens(self):
        tokens = tokenize("a*(b+c)")
        assert [t.text for t in tokens] == ["a", "*", "(", "b", "+", "c", ")"]

    def test_rejects_stray_characters(self):
        with pytest.raises(ExpressionSyntaxError):
            tokenize("a $ b")

    def test_constants(self):
        tokens = tokenize("0+1")
        assert [t.kind for t in tokens] == ["const", "op", "const"]


class TestParser:
    def test_single_variable(self):
        assert parse_expression("a") == Var("a")

    def test_precedence_and_over_or(self):
        expr = parse_expression("a+b*c")
        assert isinstance(expr, Or)
        assert expr.operands[0] == Var("a")
        assert isinstance(expr.operands[1], And)

    def test_parentheses(self):
        expr = parse_expression("(a+b)*c")
        assert isinstance(expr, And)

    def test_negation_precedence(self):
        expr = parse_expression("!a*b")
        assert isinstance(expr, And)
        assert expr.operands[0] == Not(Var("a"))

    def test_double_negation(self):
        expr = parse_expression("!!a")
        assert expr == Not(Not(Var("a")))

    def test_constants(self):
        assert parse_expression("1") == Const(1)
        assert parse_expression("0") == Const(0)

    def test_fig9_expression(self):
        expr = parse_expression("a*(b+c)+d*e")
        assert expr.variables() == {"a", "b", "c", "d", "e"}
        assert expr.evaluate({"a": 1, "b": 0, "c": 1, "d": 0, "e": 0}) == 1
        assert expr.evaluate({"a": 0, "b": 1, "c": 1, "d": 1, "e": 0}) == 0

    def test_empty_raises(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_expression("   ")

    def test_trailing_garbage_raises(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_expression("a b")

    def test_unbalanced_parenthesis_raises(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_expression("(a+b")

    def test_dangling_operator_raises(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_expression("a*")

    def test_whitespace_tolerated(self):
        assert parse_expression(" a * b ") == parse_expression("a*b")

    def test_underscored_identifiers(self):
        assert parse_expression("x_1*x_2").variables() == {"x_1", "x_2"}
