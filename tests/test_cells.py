"""Tests for the cell description language and the fault library."""

import pytest

from repro.cells import (
    Cell,
    CellSyntaxError,
    generate_library,
    normalize_technology,
    parse_cell,
)
from repro.circuits.figures import FIG9_TEXT
from repro.logic.parser import parse_expression
from repro.logic.truthtable import TruthTable


class TestLanguage:
    def test_fig9_parses(self):
        description = parse_cell(FIG9_TEXT, name="fig9")
        assert description.technology == "domino-CMOS"
        assert description.inputs == ("a", "b", "c", "d", "e")
        assert description.output == "u"
        assert description.network_expr.to_paper_syntax() == "a*(b+c)+d*e"
        assert not description.output_inverted

    def test_intermediate_flattening(self):
        description = parse_cell(
            "TECHNOLOGY domino-CMOS; INPUT a,b,c; OUTPUT z;"
            "t1 := a*b; t2 := t1+c; z := t2;"
        )
        assert description.network_expr.to_paper_syntax() == "a*b+c"

    def test_use_before_definition_rejected(self):
        with pytest.raises(CellSyntaxError):
            parse_cell(
                "TECHNOLOGY domino-CMOS; INPUT a; OUTPUT z; z := t1; t1 := a;"
            )

    def test_double_assignment_rejected(self):
        with pytest.raises(CellSyntaxError):
            parse_cell(
                "TECHNOLOGY domino-CMOS; INPUT a,b; OUTPUT z; z := a; z := b;"
            )

    def test_missing_parts_rejected(self):
        with pytest.raises(CellSyntaxError):
            parse_cell("INPUT a; OUTPUT z; z := a;")
        with pytest.raises(CellSyntaxError):
            parse_cell("TECHNOLOGY domino-CMOS; OUTPUT z; z := a;")
        with pytest.raises(CellSyntaxError):
            parse_cell("TECHNOLOGY domino-CMOS; INPUT a; z := a;")
        with pytest.raises(CellSyntaxError):
            parse_cell("TECHNOLOGY domino-CMOS; INPUT a; OUTPUT z;")

    def test_output_cannot_be_input(self):
        with pytest.raises(CellSyntaxError):
            parse_cell("TECHNOLOGY domino-CMOS; INPUT a; OUTPUT a; a := a;")

    def test_technology_aliases(self):
        assert normalize_technology("Domino CMOS") == "domino-CMOS"
        assert normalize_technology("dynamic_nmos") == "dynamic-nMOS"
        assert normalize_technology("SCVS") == "domino-CMOS"
        with pytest.raises(CellSyntaxError):
            normalize_technology("ttl")

    def test_domino_rejects_outer_negation(self):
        with pytest.raises(CellSyntaxError):
            parse_cell("TECHNOLOGY domino-CMOS; INPUT a; OUTPUT z; z := !a;")

    def test_inverting_technology_implies_inversion(self):
        description = parse_cell(
            "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a*b;"
        )
        assert description.output_inverted
        assert description.output_function.to_paper_syntax() == "!(a*b)"

    def test_explicit_negation_for_inverting_technology(self):
        description = parse_cell(
            "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := !(a*b);"
        )
        assert description.network_expr.to_paper_syntax() == "a*b"

    def test_inner_negation_rejected_for_switch_networks(self):
        with pytest.raises(CellSyntaxError):
            parse_cell("TECHNOLOGY domino-CMOS; INPUT a,b; OUTPUT z; z := !a*b;")

    def test_bipolar_allows_negation_anywhere(self):
        description = parse_cell(
            "TECHNOLOGY bipolar; INPUT a,b; OUTPUT z; z := !a*b+!b*a;"
        )
        assert description.technology == "bipolar"


class TestCell:
    def test_gate_model_dispatch(self):
        from repro.tech import DominoCmosGate, DynamicNmosGate

        domino = Cell.from_text(FIG9_TEXT)
        assert isinstance(domino.gate_model(), DominoCmosGate)
        dyn = Cell.from_text("TECHNOLOGY dynamic-nMOS; INPUT a; OUTPUT z; z := a;")
        assert isinstance(dyn.gate_model(), DynamicNmosGate)

    def test_gate_model_cached(self):
        cell = Cell.from_text(FIG9_TEXT)
        assert cell.gate_model() is cell.gate_model()

    def test_truth_table_matches_function(self):
        cell = Cell.from_text(FIG9_TEXT)
        assert cell.truth_table() == TruthTable.from_expr(
            parse_expression("a*(b+c)+d*e"), cell.inputs
        )

    def test_transistor_count(self):
        assert Cell.from_text(FIG9_TEXT).transistor_count() == 5


class TestLibrary:
    def test_fig9_ten_classes(self):
        library = generate_library(Cell.from_text(FIG9_TEXT, name="fig9"))
        assert library.class_count() == 10

    def test_fig9_equivalences(self):
        library = generate_library(Cell.from_text(FIG9_TEXT))
        by_labels = {frozenset(c.labels): c for c in library.classes}
        assert frozenset({"b closed", "c closed"}) in by_labels
        assert frozenset({"d open", "e open"}) in by_labels
        assert frozenset({"CMOS-2", "CMOS-3"}) in by_labels

    def test_fig9_functions(self):
        library = generate_library(Cell.from_text(FIG9_TEXT))
        functions = {tuple(sorted(c.labels)): c.function.sop for c in library.classes}
        assert functions[("a closed",)] == "d*e+c+b"
        assert functions[("a open",)] == "d*e"
        assert functions[("b closed", "c closed")] == "d*e+a"
        assert functions[("CMOS-2", "CMOS-3")] == "0"
        assert functions[("CMOS-4",)] == "1"

    def test_cmos1_undetectable(self):
        library = generate_library(Cell.from_text(FIG9_TEXT))
        assert any(label == "CMOS-1" for label, _ in library.undetectable)

    def test_dynamic_nmos_library(self):
        cell = Cell.from_text(
            "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a*b;"
        )
        library = generate_library(cell)
        labels = {label for cls in library.classes for label in cls.labels}
        assert any("nMOS-5" in l for l in labels)  # T(n+1) open, n=2
        assert any("S(n+2)" in l for l in labels)
        # nMOS-1 (a open): z = !(0*b) = 1, same class as the S(n+2) opens
        s1z = [c for c in library.classes if c.function.table.constant_value() == 1]
        assert len(s1z) == 1

    def test_stuck_at_library_for_static_cmos(self):
        cell = Cell.from_text(
            "TECHNOLOGY static-CMOS; INPUT a,b; OUTPUT z; z := a+b;"
        )
        library = generate_library(cell)
        labels = {label for cls in library.classes for label in cls.labels}
        assert "s0-a" in labels and "s1-z" in labels
        assert library.requires_two_pattern_tests

    def test_detection_probabilities(self):
        library = generate_library(Cell.from_text(FIG9_TEXT))
        probs = library.detection_probabilities(0.5)
        assert len(probs) == 10
        assert all(0.0 < p <= 1.0 for p in probs.values())

    def test_python_source_executes(self):
        library = generate_library(Cell.from_text(FIG9_TEXT, name="fig9"))
        namespace: dict = {}
        exec(library.to_python_source(), namespace)  # noqa: S102 - our own artifact
        fault_free = namespace["fault_free"]
        assert fault_free(a=1, b=0, c=1, d=0, e=0) == 1
        assert fault_free(a=0, b=1, c=1, d=1, e=0) == 0
        # class 10 is CMOS-4: constant 1
        labels, function = namespace["FAULT_CLASSES"][10]
        assert "CMOS-4" in labels
        assert function(a=0, b=0, c=0, d=0, e=0) == 1

    def test_callable_functions(self):
        library = generate_library(Cell.from_text(FIG9_TEXT))
        function = library.fault_free.callable()
        assert function(a=1, b=1, c=0, d=0, e=0) == 1

    def test_format_table(self):
        library = generate_library(Cell.from_text(FIG9_TEXT))
        text = library.format_table()
        assert "Class" in text
        assert "b closed" in text and "c closed" in text
