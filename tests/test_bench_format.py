"""The ISCAS85 ``.bench`` frontend: parser, writer, CLI contract.

Covers the tentpole cross-checks: the hand-written ``examples/c17.bench``
is structurally identical to :func:`repro.circuits.generators.c17`,
parse -> write -> parse is a fixed point (fingerprint-equal, since the
parser names gates deterministically), every parser error path raises
the exact registry-style message, and ``--netlist`` feeds the PROTEST
pipeline end to end.  Engine-level coverage lives in
``tests/test_engine_equivalence.py``: the parsed zoo netlist is one of
``differential_circuits()``, so every engine x schedule x plan x
collapse combination sweeps it without special-casing.
"""

from itertools import product
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.generators import c17, domino_carry_chain
from repro.netlist import (
    BenchFormatError,
    parse_bench,
    read_bench,
    resolve_netlist,
    write_bench,
)
from repro.netlist.bench import GATE_TYPES
from repro.simulate.artifacts import _cell_signature, network_fingerprint

from engine_test_utils import BENCH_ZOO

C17_BENCH = Path(__file__).resolve().parent.parent / "examples" / "c17.bench"


def structure(network):
    """Gate-name-independent structural summary: what drives each net,
    with which cell function, from which nets (in pin order)."""
    gates = {
        gate.output: (
            _cell_signature(gate.cell),
            tuple(gate.connections[pin] for pin in gate.cell.inputs),
        )
        for gate in network.gates.values()
    }
    return (list(network.inputs), list(network.outputs), gates)


class TestGoldenC17:
    def test_structurally_identical_to_generator(self):
        assert structure(read_bench(C17_BENCH)) == structure(c17())

    def test_exhaustive_outputs_identical_to_generator(self):
        parsed = read_bench(C17_BENCH)
        golden = c17()
        for bits in product((0, 1), repeat=len(golden.inputs)):
            env = dict(zip(golden.inputs, bits))
            assert parsed.evaluate(env)["n22"] == golden.evaluate(env)["n22"]
            assert parsed.evaluate(env)["n23"] == golden.evaluate(env)["n23"]

    def test_network_named_after_file(self):
        assert read_bench(C17_BENCH).name == "c17"


class TestGateSemantics:
    def test_zoo_gate_types_compute_their_functions(self):
        network = parse_bench(BENCH_ZOO, name="zoo")
        for a, b, c in product((0, 1), repeat=3):
            values = network.evaluate({"a": a, "b": b, "c": c})
            d = a & b
            e = b | c
            f = 1 - (a & c)
            g = 1 - (d | e)
            h = f ^ g
            assert values["z"] == 1 - h  # NOT then BUFF
            assert values["w"] == a ^ b ^ c  # 3-input XOR

    def test_technology_polarity_mapping(self):
        network = parse_bench(BENCH_ZOO, name="zoo")
        technologies = {
            gate.output: gate.cell.technology for gate in network.gates.values()
        }
        assert technologies["d"] == "domino-CMOS"  # AND
        assert technologies["g"] == "dynamic-nMOS"  # NOR
        assert technologies["h"] == "bipolar"  # XOR
        assert technologies["z"] == "domino-CMOS"  # BUFF

    def test_forward_references_allowed(self):
        network = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(y)\ny = NOT(a)\n")
        assert network.evaluate({"a": 1})["z"] == 1

    def test_comments_and_blank_lines_skipped(self):
        network = parse_bench(
            "# header\n\nINPUT(a)  # trailing comment\nOUTPUT(z)\nz = BUFF(a)\n"
        )
        assert network.inputs == ["a"] and network.outputs == ["z"]


class TestRoundTrip:
    def test_c17_round_trip_is_fixed_point(self):
        parsed = read_bench(C17_BENCH)
        again = parse_bench(write_bench(parsed), name=parsed.name)
        assert network_fingerprint(again) == network_fingerprint(parsed)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_netlists_round_trip(self, data):
        n_inputs = data.draw(st.integers(1, 4), label="inputs")
        nets = [f"x{k}" for k in range(n_inputs)]
        lines = [f"INPUT({net})" for net in nets]
        n_gates = data.draw(st.integers(1, 10), label="gates")
        for g in range(n_gates):
            kind = data.draw(st.sampled_from(GATE_TYPES), label=f"kind{g}")
            fan_in = (
                1
                if kind in ("NOT", "BUFF")
                else data.draw(st.integers(2, 3), label=f"fan{g}")
            )
            sources = [
                data.draw(st.sampled_from(nets), label=f"src{g}_{k}")
                for k in range(fan_in)
            ]
            lines.append(f"y{g} = {kind}({', '.join(sources)})")
            nets.append(f"y{g}")
        lines.append(f"OUTPUT(y{n_gates - 1})")
        text = "\n".join(lines) + "\n"
        first = parse_bench(text, name="prop")
        second = parse_bench(write_bench(first), name="prop")
        assert structure(second) == structure(first)
        assert network_fingerprint(second) == network_fingerprint(first)

    def test_writer_rejects_cells_outside_the_format(self):
        network = domino_carry_chain(2)
        with pytest.raises(BenchFormatError) as err:
            write_bench(network)
        assert str(err.value) == (
            "gate 'stage0': cell 'carry_step' (domino-CMOS) has no .bench "
            "gate type; supported gate types: " + ", ".join(GATE_TYPES)
        )


class TestParserErrors:
    """Exact messages, registry style: line number, offender, and (for
    gate types) the sorted supported list."""

    CASES = [
        (
            "a = FOO(b, c)",
            "line 1: unknown gate type 'FOO'; supported gate types: "
            "AND, BUFF, NAND, NOR, NOT, OR, XOR",
        ),
        ("INPUT(a)\na = AND(a, a)", "line 2: duplicate driver for net 'a'"),
        (
            "INPUT(a)\nz = BUFF(a)\nz = NOT(a)",
            "line 3: duplicate driver for net 'z'",
        ),
        (
            "z = BUFF(a)\nINPUT(z)",
            "line 2: duplicate driver for net 'z'",
        ),
        ("INPUT(a)\nz = AND(a, q)", "line 2: undeclared net 'q'"),
        ("OUTPUT(q)", "line 1: undeclared net 'q'"),
        ("what is this", "line 1: cannot parse 'what is this'"),
        ("z = AND(a,)", "line 1: cannot parse 'z = AND(a,)'"),
        ("z = NOT(a, b)", "line 1: gate type NOT takes exactly one input, got 2"),
        ("z = BUFF()", "line 1: gate type BUFF takes exactly one input, got 0"),
        ("z = AND(a)", "line 1: gate type AND needs at least two inputs, got 1"),
        ("z = XOR()", "line 1: gate type XOR needs at least two inputs, got 0"),
    ]

    @pytest.mark.parametrize("text, message", CASES, ids=[m for _, m in CASES])
    def test_exact_message(self, text, message):
        with pytest.raises(BenchFormatError) as err:
            parse_bench(text)
        assert str(err.value) == message

    def test_bench_format_error_is_value_error(self):
        assert issubclass(BenchFormatError, ValueError)


class TestResolveNetlist:
    def test_missing_file_message(self, tmp_path):
        path = tmp_path / "nope.bench"
        with pytest.raises(BenchFormatError) as err:
            resolve_netlist(path)
        assert str(err.value).startswith(f"cannot read netlist {str(path)!r}: ")

    def test_parse_errors_name_the_file(self, tmp_path):
        path = tmp_path / "bad.bench"
        path.write_text("garbage line\n")
        with pytest.raises(BenchFormatError) as err:
            resolve_netlist(path)
        assert str(err.value) == (
            f"netlist {str(path)!r}: line 1: cannot parse 'garbage line'"
        )


class TestCli:
    def test_protest_runs_on_netlist(self, capsys):
        from repro.cli import main

        assert main(["protest", "--netlist", str(C17_BENCH)]) == 0
        assert "PROTEST report for c17" in capsys.readouterr().out

    def test_bad_netlist_fails_at_parse_time(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["protest", "--netlist", "/no/such/file.bench"])
        assert (
            "cannot read netlist '/no/such/file.bench': "
            in capsys.readouterr().err
        )

    def test_cellfile_and_netlist_are_mutually_exclusive(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as err:
            main(["protest", "whatever.cell", "--netlist", str(C17_BENCH)])
        assert "not both" in str(err.value)

    def test_one_of_cellfile_or_netlist_required(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as err:
            main(["protest"])
        assert "required" in str(err.value)
