"""Unit tests for truth tables."""

import pytest

from repro.logic.expr import Var, vars_
from repro.logic.parser import parse_expression
from repro.logic.truthtable import TruthTable, tables_on_common_names


def table(text, names=None):
    return TruthTable.from_expr(parse_expression(text), names)


class TestConstruction:
    def test_from_expr_and2(self):
        t = table("a*b")
        assert t.bits == 0b1000  # only minterm 3 (a=1,b=1)

    def test_from_expr_or2(self):
        assert table("a+b").bits == 0b1110

    def test_row_order_matches_paper(self):
        t = table("a", names=("a", "b"))
        # a is the MSB: minterms 2,3 have a=1
        assert [v for _, v in t.rows()] == [0, 0, 1, 1]

    def test_explicit_names_superset(self):
        t = table("a", names=("a", "b"))
        assert t.names == ("a", "b")
        assert t.value({"a": 1, "b": 0}) == 1

    def test_missing_name_raises(self):
        with pytest.raises(ValueError):
            table("a*b", names=("a",))

    def test_duplicate_names_raise(self):
        with pytest.raises(ValueError):
            TruthTable(("a", "a"), 0)

    def test_from_function(self):
        t = TruthTable.from_function(("a", "b"), lambda v: v["a"] ^ v["b"])
        assert t == table("a*!b+!a*b")

    def test_constant(self):
        assert TruthTable.constant(("a", "b"), 1).ones_count() == 4
        assert TruthTable.constant(("a", "b"), 0).ones_count() == 0

    def test_size_guard(self):
        with pytest.raises(ValueError):
            TruthTable(tuple(f"v{i}" for i in range(30)), 0)


class TestQueries:
    def test_value(self):
        t = table("a*b")
        assert t.value({"a": 1, "b": 1}) == 1
        assert t.value({"a": 0, "b": 1}) == 0

    def test_value_at(self):
        t = table("a*b")
        assert t.value_at(3) == 1
        with pytest.raises(IndexError):
            t.value_at(4)

    def test_minterms(self):
        assert list(table("a+b").minterms()) == [1, 2, 3]

    def test_constant_value(self):
        assert table("a+!a").constant_value() == 1
        assert table("a*!a").constant_value() == 0
        assert table("a").constant_value() is None

    def test_support_drops_fake_dependence(self):
        t = table("a*b+a*!b", names=("a", "b"))
        assert t.support() == ("a",)

    def test_depends_on(self):
        t = table("a*b")
        assert t.depends_on("a")
        assert not table("a", names=("a", "b")).depends_on("b")


class TestAlgebra:
    def test_xor_is_difference_function(self):
        good = table("a*b")
        faulty = table("a", names=("a", "b"))
        difference = good ^ faulty
        # differ exactly when a=1, b=0
        assert list(difference.minterms()) == [2]

    def test_incompatible_names_raise(self):
        with pytest.raises(ValueError):
            table("a") & table("b")

    def test_invert(self):
        assert (~table("a*b")).bits == 0b0111

    def test_expand_reorder(self):
        t = table("a*b")
        expanded = t.expand(("b", "a"))
        assert expanded.value({"a": 1, "b": 1}) == 1
        assert expanded.value({"a": 1, "b": 0}) == 0

    def test_expand_superset(self):
        t = table("a")
        wide = t.expand(("a", "b", "c"))
        assert wide.value({"a": 1, "b": 0, "c": 1}) == 1

    def test_cofactor(self):
        t = table("a*b+c")
        c1 = t.cofactor("c", 1)
        assert c1.constant_value() == 1

    def test_tables_on_common_names(self):
        t1, t2 = tables_on_common_names([table("a"), table("b")])
        assert t1.names == t2.names == ("a", "b")


class TestProbability:
    def test_uniform(self):
        assert table("a*b").probability(0.5) == pytest.approx(0.25)

    def test_weighted(self):
        assert table("a*b").probability({"a": 0.9, "b": 0.9}) == pytest.approx(0.81)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            table("a").probability({"a": 1.5})

    def test_formats(self):
        text = table("a*b").format_table()
        assert "a b | f" in text
        assert text.count("\n") == 5
