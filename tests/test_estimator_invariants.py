"""Hypothesis property tests for estimator invariants.

Structural properties that must hold regardless of circuit, pattern
set or sharding layout:

* :func:`coverage_curve` is monotone non-decreasing in the pattern
  count - seeing more patterns can only detect more faults;
* :func:`merge_results` is order-independent over shard permutations
  (commutative) and bracketing-independent (associative): however a
  fault list is split and in whatever order the shards come back, the
  merged result is the same.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from engine_test_utils import all_faults

from repro.circuits.generators import random_network
from repro.simulate import PatternSet, coverage_curve, fault_simulate, merge_results
from repro.simulate.sharded import shard_bounds


def results_order_independent(a, b):
    """Identical up to undetected-list ORDER: shard permutations may
    legitimately reorder the concatenated undetected labels (unlike the
    bit-identity helper in conftest, which compares order too)."""
    assert a.detected == b.detected
    assert a.detection_counts == b.detection_counts
    assert sorted(a.undetected) == sorted(b.undetected)
    assert a.pattern_count == b.pattern_count


@settings(max_examples=15)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=300),
    points=st.integers(min_value=1, max_value=48),
    weight=st.floats(min_value=0.0, max_value=1.0),
)
def test_coverage_curve_monotone_nondecreasing(seed, count, points, weight):
    """Property: coverage never drops as the pattern count grows."""
    network = random_network(n_inputs=5, n_gates=10, seed=seed)
    patterns = PatternSet.random(
        network.inputs, count, seed=seed ^ 0x77, probabilities={network.inputs[0]: weight}
    )
    curve = coverage_curve(network, patterns, points=points)
    assert curve, "curve must have at least one sample"
    pattern_counts = [upto for upto, _coverage in curve]
    coverages = [coverage for _upto, coverage in curve]
    assert pattern_counts == sorted(pattern_counts)
    assert pattern_counts[-1] == patterns.count
    assert all(0.0 <= c <= 1.0 for c in coverages)
    assert all(a <= b for a, b in zip(coverages, coverages[1:]))


@settings(max_examples=15)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=150),
    shards=st.integers(min_value=1, max_value=6),
    permutation_seed=st.randoms(use_true_random=False),
)
def test_merge_results_order_independent(seed, count, shards, permutation_seed):
    """Property: merging shard results is commutative - any permutation
    of the parts merges to the whole-list result."""
    network = random_network(n_inputs=5, n_gates=8, seed=seed)
    patterns = PatternSet.random(network.inputs, count, seed=seed ^ 0x1234)
    faults = all_faults(network)
    whole = fault_simulate(network, patterns, faults)
    parts = [
        fault_simulate(network, patterns, faults[lo:hi])
        for lo, hi in shard_bounds(len(faults), shards)
    ]
    permuted = parts[:]
    permutation_seed.shuffle(permuted)
    results_order_independent(merge_results(permuted), whole)


@settings(max_examples=10)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=150),
    split=st.integers(min_value=1, max_value=5),
)
def test_merge_results_associative(seed, count, split):
    """Property: merging is bracketing-independent - merging merged
    sub-results equals merging all parts flat."""
    network = random_network(n_inputs=5, n_gates=8, seed=seed)
    patterns = PatternSet.random(network.inputs, count, seed=seed ^ 0x4321)
    faults = all_faults(network)
    bounds = shard_bounds(len(faults), 4)
    parts = [fault_simulate(network, patterns, faults[lo:hi]) for lo, hi in bounds]
    flat = merge_results(parts)
    pivot = max(1, min(len(parts) - 1, split)) if len(parts) > 1 else 1
    if len(parts) == 1:
        nested = merge_results([merge_results(parts)])
    else:
        nested = merge_results(
            [merge_results(parts[:pivot]), merge_results(parts[pivot:])]
        )
    results_order_independent(nested, flat)
