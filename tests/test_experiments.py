"""Every experiment must run and every paper claim must hold.

E3/E4 run with reduced gate families here to keep the suite fast; the
full families run in the benchmarks and via ``python -m repro.experiments``.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    e1_fig1_nor,
    e2_fig2_degradation,
    e3_dynamic_nmos_model,
    e4_domino_model,
    e5_fig9_library,
    e6_protest_analysis,
    e7_optimized_probabilities,
    e8_test_strategies,
    e9_selftest_at_speed,
    e10_library_runtime,
)


def test_registry_covers_all_experiments():
    assert list(ALL_EXPERIMENTS) == [f"E{k}" for k in range(1, 13)]


def test_e11_claims():
    from repro.experiments import e11_leakage

    result = e11_leakage.run()
    assert result.all_claims_hold, result.claims


def test_e12_claims():
    from repro.experiments import e12_scan_invalidation

    result = e12_scan_invalidation.run()
    assert result.all_claims_hold, result.claims


def test_e1_claims():
    result = e1_fig1_nor.run()
    assert result.all_claims_hold, result.claims
    assert len(result.rows) == 4


def test_e2_claims():
    result = e2_fig2_degradation.run()
    assert result.all_claims_hold, result.claims


def test_e3_claims_reduced_family():
    result = e3_dynamic_nmos_model.run(expressions=("a*b", "a+b"))
    assert result.all_claims_hold, result.claims
    assert all(row["match"] for row in result.rows)


def test_e4_claims_reduced_family():
    result = e4_domino_model.run(expressions=("a*b",))
    assert result.all_claims_hold, result.claims


def test_e5_claims():
    result = e5_fig9_library.run()
    assert result.all_claims_hold, result.claims
    assert len(result.rows) == 10


def test_e6_claims():
    result = e6_protest_analysis.run()
    assert result.all_claims_hold, result.claims


def test_e7_claims_reduced():
    result = e7_optimized_probabilities.run(widths=(4, 6, 8), validate_width=6)
    assert result.claims["optimized beats uniform at every width"]
    assert result.claims["gain exceeds one order of magnitude"]


def test_e8_claims():
    result = e8_test_strategies.run()
    assert result.all_claims_hold, result.claims


def test_e9_claims():
    result = e9_selftest_at_speed.run(cycles=32)
    assert result.all_claims_hold, result.claims


def test_e10_claims():
    result = e10_library_runtime.run(sizes=(4, 8, 12))
    assert result.claims["a 12-transistor gate takes well under a second"]


def test_result_formatting():
    result = e5_fig9_library.run()
    text = result.format()
    assert "E5" in text
    assert "[x]" in text
