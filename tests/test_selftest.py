"""Tests for the self-test hardware: LFSR, MISR, BILBO, NLFSR, sessions."""

import numpy as np
import pytest

from repro.circuits.generators import domino_carry_chain
from repro.logic.parser import parse_expression
from repro.selftest import (
    BANK_DEGREE,
    Bilbo,
    BilboMode,
    Lfsr,
    LfsrBank,
    Misr,
    PRIMITIVE_TAPS,
    WeightedPatternGenerator,
    at_speed_gate_selftest,
    bank_seed,
    closest_dyadic_weight,
    logic_selftest,
)
from repro.switchlevel.network import FaultKind, PhysicalFault
from repro.tech import DominoCmosGate


class TestLfsr:
    @pytest.mark.parametrize("degree", [2, 3, 4, 5, 8, 10, 12])
    def test_maximal_period(self, degree):
        assert Lfsr(degree).period() == (1 << degree) - 1

    def test_never_all_zero(self):
        lfsr = Lfsr(6)
        for _ in range(200):
            lfsr.step()
            assert lfsr.state != 0

    def test_reset(self):
        lfsr = Lfsr(5, seed=7)
        lfsr.step()
        lfsr.reset()
        assert lfsr.state == 7

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(4, seed=0)
        with pytest.raises(ValueError):
            Lfsr(4, seed=16)

    def test_pattern_width_bounded(self):
        with pytest.raises(ValueError):
            Lfsr(4).pattern(5)

    def test_tabulated_degrees(self):
        assert set(range(2, 33)) == set(PRIMITIVE_TAPS)

    def test_balanced_output(self):
        lfsr = Lfsr(10)
        ones = sum(lfsr.step() for _ in range(1023))
        assert ones == 512  # maximal-length sequences have 2^(n-1) ones

    def test_period_does_not_clobber_state(self):
        # period() used to run the register from its current state and
        # leave it wherever the cycle closed - an observation that
        # rewrote the thing observed.
        lfsr = Lfsr(7, seed=45)
        lfsr.jump(13)
        before = lfsr.state
        assert lfsr.period() == 127
        assert lfsr.state == before

    def test_jump_matches_serial_stepping(self):
        serial = Lfsr(12, seed=321)
        jumped = Lfsr(12, seed=321)
        for _ in range(157):
            serial.step()
        jumped.jump(157)
        assert jumped.state == serial.state
        with pytest.raises(ValueError):
            jumped.jump(-1)

    @pytest.mark.parametrize("degree", [5, 12, 31])
    def test_lane_words_match_serial_patterns(self, degree):
        width = min(degree, 8)
        serial = Lfsr(degree, seed=3)
        lanes = Lfsr(degree, seed=3)
        expected = list(serial.patterns(width, 3 * 64))
        words = lanes.lane_words(width, 3)
        for p, pattern in enumerate(expected):
            w, k = divmod(p, 64)
            for i in range(width):
                assert (int(words[i, w]) >> k) & 1 == pattern[i]
        # Both paths advance the register identically.
        assert lanes.state == serial.state

    def test_lane_words_width_bounded(self):
        with pytest.raises(ValueError):
            Lfsr(4).lane_words(5, 1)


class TestLfsrBank:
    def test_bank_seeds_distinct_and_in_range(self):
        seeds = [bank_seed(1, index) for index in range(8)]
        assert len(set(seeds)) == len(seeds)
        assert all(1 <= s < (1 << BANK_DEGREE) for s in seeds)

    def test_wide_bank_covers_width(self):
        bank = LfsrBank(40, seed=1)
        assert len(bank.members) == 2
        pattern = bank.pattern()
        assert len(pattern) == 40

    def test_lane_words_match_serial_patterns(self):
        serial = LfsrBank(40, seed=9)
        lanes = LfsrBank(40, seed=9)
        expected = list(serial.patterns(2 * 64))
        words = lanes.lane_words(2)
        assert words.shape == (40, 2)
        for p, pattern in enumerate(expected):
            w, k = divmod(p, 64)
            for i in range(40):
                assert (int(words[i, w]) >> k) & 1 == pattern[i]

    def test_jump_matches_serial(self):
        serial = LfsrBank(10, seed=4)
        jumped = LfsrBank(10, seed=4)
        for _ in range(99):
            serial.step()
        jumped.jump(99)
        assert jumped.pattern() == serial.pattern()


class TestWeightedLaneWords:
    def test_lane_words_match_serial_patterns(self):
        probabilities = {"a": 0.75, "b": 0.125, "c": 0.5, "d": 0.9}
        serial = WeightedPatternGenerator(probabilities, seed=5)
        lanes = WeightedPatternGenerator(probabilities, seed=5)
        expected = list(serial.patterns(2 * 64))
        words = lanes.lane_words(2)
        names = [a.name for a in lanes.assignments]
        for p, pattern in enumerate(expected):
            w, k = divmod(p, 64)
            for row, name in enumerate(names):
                assert (int(words[row, w]) >> k) & 1 == pattern[name]

    def test_lane_words_over_multiple_banks(self):
        probabilities = {f"x{i}": 0.02 for i in range(10)}
        serial = WeightedPatternGenerator(probabilities, seed=2, max_k=6)
        lanes = WeightedPatternGenerator(probabilities, seed=2, max_k=6)
        assert len(lanes.banks) >= 2
        expected = list(serial.patterns(64))
        words = lanes.lane_words(1)
        names = [a.name for a in lanes.assignments]
        for p, pattern in enumerate(expected):
            for row, name in enumerate(names):
                assert (int(words[row, 0]) >> p) & 1 == pattern[name]

    def test_lane_words_empty(self):
        generator = WeightedPatternGenerator({"a": 0.5})
        words = generator.lane_words(0)
        assert words.shape == (1, 0)
        assert words.dtype == np.uint64


class TestMisr:
    def test_signature_deterministic(self):
        m1, m2 = Misr(8), Misr(8)
        stream = [[1, 0, 1], [0, 1, 1], [1, 1, 0]]
        assert m1.absorb_all(stream) == m2.absorb_all(stream)

    def test_signature_sensitive_to_single_bit(self):
        good = Misr(8)
        bad = Misr(8)
        good.absorb_all([[1, 0], [0, 1], [1, 1]])
        bad.absorb_all([[1, 0], [0, 0], [1, 1]])
        assert good.signature != bad.signature

    def test_width_guard(self):
        with pytest.raises(ValueError):
            Misr(8).absorb([1] * 9)

    def test_aliasing_probability(self):
        assert Misr(16).aliasing_probability() == pytest.approx(2.0 ** -16)


class TestBilbo:
    def test_normal_mode_loads(self):
        bilbo = Bilbo(4)
        assert bilbo.clock(parallel_in=[1, 0, 1, 0]) == [1, 0, 1, 0]

    def test_shift_mode(self):
        bilbo = Bilbo(4, seed=0)
        bilbo.set_mode(BilboMode.SHIFT)
        for bit in (1, 0, 1, 1):
            bilbo.clock(serial_in=bit)
        # First bit in ends up in the MSB after four shifts.
        assert bilbo.state == 0b1011

    def test_prpg_mode_cycles(self):
        bilbo = Bilbo(4)
        bilbo.set_mode(BilboMode.PRPG)
        seen = set()
        for _ in range(15):
            bilbo.clock()
            seen.add(bilbo.state)
        assert len(seen) == 15  # maximal length

    def test_misr_mode_compacts(self):
        bilbo = Bilbo(4)
        bilbo.set_mode(BilboMode.MISR)
        bilbo.clock(parallel_in=[1, 0, 0, 1])
        state_a = bilbo.state
        bilbo.clock(parallel_in=[0, 1, 1, 0])
        assert bilbo.state != state_a

    def test_mode_requirements(self):
        bilbo = Bilbo(4)
        with pytest.raises(ValueError):
            bilbo.clock()  # NORMAL needs data
        bilbo.set_mode(BilboMode.MISR)
        with pytest.raises(ValueError):
            bilbo.clock()

    def test_scan_out(self):
        bilbo = Bilbo(4, seed=0b1010)
        assert bilbo.scan_out() == [1, 0, 1, 0]


class TestWeightedGenerator:
    def test_dyadic_weights(self):
        assert closest_dyadic_weight(0.5) == (1, False, 0.5)
        k, inverted, realised = closest_dyadic_weight(0.9)
        assert inverted and realised == pytest.approx(0.875)
        k, inverted, realised = closest_dyadic_weight(0.1)
        assert not inverted and realised == pytest.approx(0.125)

    def test_empirical_frequencies(self):
        generator = WeightedPatternGenerator({"a": 0.75, "b": 0.125, "c": 0.5})
        empirical = generator.empirical_probabilities(4096)
        realised = generator.realised_probabilities()
        for name in empirical:
            assert empirical[name] == pytest.approx(realised[name], abs=0.03)

    def test_weight_bounds(self):
        with pytest.raises(ValueError):
            closest_dyadic_weight(0.0)

    def test_wide_generator_uses_multiple_banks(self):
        generator = WeightedPatternGenerator(
            {f"x{i}": 0.02 for i in range(10)}, max_k=6
        )
        assert len(generator.banks) >= 2
        empirical = generator.empirical_probabilities(8192)
        for name, frequency in empirical.items():
            assert frequency == pytest.approx(1 / 64, abs=0.01)


class TestSessions:
    def test_fault_free_signature_matches(self):
        network = domino_carry_chain(3)
        outcome = logic_selftest(network, None, cycles=128)
        assert not outcome.detected

    def test_detects_every_library_fault(self):
        network = domino_carry_chain(3)
        for fault in network.enumerate_faults():
            outcome = logic_selftest(network, fault, cycles=256)
            assert outcome.detected, fault.describe()

    def test_weighted_session(self):
        network = domino_carry_chain(3)
        fault = network.enumerate_faults()[0]
        outcome = logic_selftest(
            network, fault, cycles=256,
            probabilities={name: 0.7 for name in network.inputs},
        )
        assert outcome.detected

    def test_wide_network_session(self):
        # domino_carry_chain(20) has 41 inputs; the session used to
        # crash for anything past 32 because it drew every bit from one
        # fixed-degree register.
        network = domino_carry_chain(20)
        assert len(network.inputs) > 40
        clean = logic_selftest(network, None, cycles=128)
        assert not clean.detected
        fault = network.enumerate_faults()[0]
        outcome = logic_selftest(network, fault, cycles=256)
        assert outcome.detected

    def test_session_detects_with_partial_weights(self):
        # Missing names fall back to 0.5 rather than crashing.
        network = domino_carry_chain(3)
        fault = network.enumerate_faults()[0]
        outcome = logic_selftest(
            network, fault, cycles=256,
            probabilities={network.inputs[0]: 0.75},
        )
        assert outcome.detected

    def test_at_speed_catches_delay_fault(self):
        gate = DominoCmosGate(parse_expression("a*b"), precharge_resistance=4.0)
        fault = PhysicalFault(FaultKind.TRANSISTOR_CLOSED, switch="T1")
        at_speed = at_speed_gate_selftest(gate, fault, cycles=32)
        slow = at_speed_gate_selftest(gate, fault, cycles=32, period=48.0)
        assert at_speed.detected
        assert not slow.detected

    def test_at_speed_fault_free_clean(self):
        gate = DominoCmosGate(parse_expression("a*b"))
        outcome = at_speed_gate_selftest(gate, None, cycles=24)
        assert not outcome.detected
