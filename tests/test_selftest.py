"""Tests for the self-test hardware: LFSR, MISR, BILBO, NLFSR, sessions."""

import pytest

from repro.circuits.generators import domino_carry_chain
from repro.logic.parser import parse_expression
from repro.selftest import (
    Bilbo,
    BilboMode,
    Lfsr,
    Misr,
    PRIMITIVE_TAPS,
    WeightedPatternGenerator,
    at_speed_gate_selftest,
    closest_dyadic_weight,
    logic_selftest,
)
from repro.switchlevel.network import FaultKind, PhysicalFault
from repro.tech import DominoCmosGate


class TestLfsr:
    @pytest.mark.parametrize("degree", [2, 3, 4, 5, 8, 10, 12])
    def test_maximal_period(self, degree):
        assert Lfsr(degree).period() == (1 << degree) - 1

    def test_never_all_zero(self):
        lfsr = Lfsr(6)
        for _ in range(200):
            lfsr.step()
            assert lfsr.state != 0

    def test_reset(self):
        lfsr = Lfsr(5, seed=7)
        lfsr.step()
        lfsr.reset()
        assert lfsr.state == 7

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(4, seed=0)
        with pytest.raises(ValueError):
            Lfsr(4, seed=16)

    def test_pattern_width_bounded(self):
        with pytest.raises(ValueError):
            Lfsr(4).pattern(5)

    def test_tabulated_degrees(self):
        assert set(range(2, 33)) == set(PRIMITIVE_TAPS)

    def test_balanced_output(self):
        lfsr = Lfsr(10)
        ones = sum(lfsr.step() for _ in range(1023))
        assert ones == 512  # maximal-length sequences have 2^(n-1) ones


class TestMisr:
    def test_signature_deterministic(self):
        m1, m2 = Misr(8), Misr(8)
        stream = [[1, 0, 1], [0, 1, 1], [1, 1, 0]]
        assert m1.absorb_all(stream) == m2.absorb_all(stream)

    def test_signature_sensitive_to_single_bit(self):
        good = Misr(8)
        bad = Misr(8)
        good.absorb_all([[1, 0], [0, 1], [1, 1]])
        bad.absorb_all([[1, 0], [0, 0], [1, 1]])
        assert good.signature != bad.signature

    def test_width_guard(self):
        with pytest.raises(ValueError):
            Misr(8).absorb([1] * 9)

    def test_aliasing_probability(self):
        assert Misr(16).aliasing_probability() == pytest.approx(2.0 ** -16)


class TestBilbo:
    def test_normal_mode_loads(self):
        bilbo = Bilbo(4)
        assert bilbo.clock(parallel_in=[1, 0, 1, 0]) == [1, 0, 1, 0]

    def test_shift_mode(self):
        bilbo = Bilbo(4, seed=0)
        bilbo.set_mode(BilboMode.SHIFT)
        for bit in (1, 0, 1, 1):
            bilbo.clock(serial_in=bit)
        # First bit in ends up in the MSB after four shifts.
        assert bilbo.state == 0b1011

    def test_prpg_mode_cycles(self):
        bilbo = Bilbo(4)
        bilbo.set_mode(BilboMode.PRPG)
        seen = set()
        for _ in range(15):
            bilbo.clock()
            seen.add(bilbo.state)
        assert len(seen) == 15  # maximal length

    def test_misr_mode_compacts(self):
        bilbo = Bilbo(4)
        bilbo.set_mode(BilboMode.MISR)
        bilbo.clock(parallel_in=[1, 0, 0, 1])
        state_a = bilbo.state
        bilbo.clock(parallel_in=[0, 1, 1, 0])
        assert bilbo.state != state_a

    def test_mode_requirements(self):
        bilbo = Bilbo(4)
        with pytest.raises(ValueError):
            bilbo.clock()  # NORMAL needs data
        bilbo.set_mode(BilboMode.MISR)
        with pytest.raises(ValueError):
            bilbo.clock()

    def test_scan_out(self):
        bilbo = Bilbo(4, seed=0b1010)
        assert bilbo.scan_out() == [1, 0, 1, 0]


class TestWeightedGenerator:
    def test_dyadic_weights(self):
        assert closest_dyadic_weight(0.5) == (1, False, 0.5)
        k, inverted, realised = closest_dyadic_weight(0.9)
        assert inverted and realised == pytest.approx(0.875)
        k, inverted, realised = closest_dyadic_weight(0.1)
        assert not inverted and realised == pytest.approx(0.125)

    def test_empirical_frequencies(self):
        generator = WeightedPatternGenerator({"a": 0.75, "b": 0.125, "c": 0.5})
        empirical = generator.empirical_probabilities(4096)
        realised = generator.realised_probabilities()
        for name in empirical:
            assert empirical[name] == pytest.approx(realised[name], abs=0.03)

    def test_weight_bounds(self):
        with pytest.raises(ValueError):
            closest_dyadic_weight(0.0)

    def test_wide_generator_uses_multiple_banks(self):
        generator = WeightedPatternGenerator(
            {f"x{i}": 0.02 for i in range(10)}, max_k=6
        )
        assert len(generator.banks) >= 2
        empirical = generator.empirical_probabilities(8192)
        for name, frequency in empirical.items():
            assert frequency == pytest.approx(1 / 64, abs=0.01)


class TestSessions:
    def test_fault_free_signature_matches(self):
        network = domino_carry_chain(3)
        outcome = logic_selftest(network, None, cycles=128)
        assert not outcome.detected

    def test_detects_every_library_fault(self):
        network = domino_carry_chain(3)
        for fault in network.enumerate_faults():
            outcome = logic_selftest(network, fault, cycles=256)
            assert outcome.detected, fault.describe()

    def test_weighted_session(self):
        network = domino_carry_chain(3)
        fault = network.enumerate_faults()[0]
        outcome = logic_selftest(
            network, fault, cycles=256,
            probabilities={name: 0.7 for name in network.inputs},
        )
        assert outcome.detected

    def test_at_speed_catches_delay_fault(self):
        gate = DominoCmosGate(parse_expression("a*b"), precharge_resistance=4.0)
        fault = PhysicalFault(FaultKind.TRANSISTOR_CLOSED, switch="T1")
        at_speed = at_speed_gate_selftest(gate, fault, cycles=32)
        slow = at_speed_gate_selftest(gate, fault, cycles=32, period=48.0)
        assert at_speed.detected
        assert not slow.detected

    def test_at_speed_fault_free_clean(self):
        gate = DominoCmosGate(parse_expression("a*b"))
        outcome = at_speed_gate_selftest(gate, None, cycles=24)
        assert not outcome.detected
