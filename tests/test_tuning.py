"""The execution planner's invariants (:mod:`repro.simulate.tuning`).

Plans only re-tile work - bit-identity across plans is the differential
harness's job (``test_engine_equivalence.py`` sweeps every engine x
schedule x tuning-plan combination) - so what this file holds are the
planner's *own* contracts: every width inside its physical bounds,
decisions deterministic pure functions of the profile, chunk width
monotone non-increasing in cone size, profiles JSON round-trippable to
identical plans, the ``default`` plan reading the engine-module
constants at call time (so monkeypatching ``vector.VECTOR_CHUNK`` still
steers every chunk read), and the ``resolve_plan`` error contract every
entry point surfaces.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulate import (
    TuningProfile,
    available_tunings,
    calibrate_profile,
    resolve_plan,
)
from repro.simulate.tuning import (
    DEFAULT_TUNING,
    MAX_CHUNK_WORDS,
    DefaultPlan,
    TunedPlan,
)

profiles = st.builds(
    TuningProfile,
    name=st.just("prop"),
    word_ns=st.floats(min_value=1e-3, max_value=1e3),
    call_ns=st.floats(min_value=1e-3, max_value=1e6),
    block_ns=st.floats(min_value=1e-3, max_value=1e3),
    cache_words=st.integers(min_value=1, max_value=1 << 24),
)

cone_sizes = st.integers(min_value=0, max_value=5000)
batches = st.integers(min_value=1, max_value=64)
word_counts = st.integers(min_value=1, max_value=1 << 22)
pattern_counts = st.integers(min_value=1, max_value=1 << 26)
slot_counts = st.one_of(st.none(), st.integers(min_value=1, max_value=4096))


class TestPlannerProperties:
    @given(profile=profiles, cone=cone_sizes, batch=batches, n_words=word_counts)
    def test_chunk_always_within_bounds(self, profile, cone, batch, n_words):
        chunk = TunedPlan(profile).chunk_words(cone, batch, n_words)
        assert 1 <= chunk <= n_words
        assert chunk <= MAX_CHUNK_WORDS

    @given(profile=profiles, n_patterns=pattern_counts, slots=slot_counts)
    def test_windows_always_within_bounds(self, profile, n_patterns, slots):
        plan = TunedPlan(profile)
        for window in (
            plan.lane_window(n_patterns, slots),
            plan.bigint_window(n_patterns, slots),
            plan.serial_window(n_patterns, slots),
            plan.shard_window(n_patterns, slots, "vector"),
            plan.shard_window(n_patterns, slots, "compiled"),
        ):
            assert 1 <= window <= n_patterns

    @given(profile=profiles, cone=cone_sizes, batch=batches, n_words=word_counts,
           n_patterns=pattern_counts, slots=slot_counts)
    def test_plans_deterministic_for_a_fixed_profile(
        self, profile, cone, batch, n_words, n_patterns, slots
    ):
        """Two plans built from equal profiles make identical decisions
        (and re-asking one plan never changes its answer)."""
        first, second = TunedPlan(profile), TunedPlan(profile)
        assert first.profile == second.profile
        assert first.chunk_words(cone, batch, n_words) == second.chunk_words(
            cone, batch, n_words
        )
        assert first.chunk_words(cone, batch, n_words) == first.chunk_words(
            cone, batch, n_words
        )
        assert first.lane_window(n_patterns, slots) == second.lane_window(
            n_patterns, slots
        )
        assert first.bigint_window(n_patterns, slots) == second.bigint_window(
            n_patterns, slots
        )
        assert first.coalesce_overhead_words() == second.coalesce_overhead_words()
        assert first.block_build_factor() == second.block_build_factor()

    @given(profile=profiles, cone_a=cone_sizes, cone_b=cone_sizes,
           batch=batches, n_words=word_counts)
    def test_chunk_monotone_non_increasing_in_cone_size(
        self, profile, cone_a, cone_b, batch, n_words
    ):
        """Deep cones never get wider chunks than shallow ones: the
        residency term shrinks with cone depth and the overhead floor is
        cone-independent."""
        lo, hi = sorted((cone_a, cone_b))
        plan = TunedPlan(profile)
        assert plan.chunk_words(lo, batch, n_words) >= plan.chunk_words(
            hi, batch, n_words
        )

    @given(profile=profiles)
    @settings(max_examples=10)
    def test_profile_round_trip_gives_identical_plan(self, profile, tmp_path_factory):
        path = tmp_path_factory.mktemp("tuning") / "profile.json"
        profile.save(path)
        reloaded = TuningProfile.load(path)
        assert reloaded == profile
        before, after = TunedPlan(profile), TunedPlan(reloaded)
        for cone in (0, 1, 7, 48, 192, 4000):
            for batch in (1, 2, 16, 64):
                assert before.chunk_words(cone, batch, 1 << 20) == (
                    after.chunk_words(cone, batch, 1 << 20)
                )
        for slots in (None, 1, 48, 1024):
            assert before.lane_window(1 << 24, slots) == after.lane_window(
                1 << 24, slots
            )
            assert before.bigint_window(1 << 24, slots) == after.bigint_window(
                1 << 24, slots
            )
        assert before.coalesce_overhead_words() == after.coalesce_overhead_words()
        assert before.block_build_factor() == after.block_build_factor()

    @given(profile=profiles, batch=batches, n_words=word_counts)
    def test_per_cone_widths_are_a_real_degree_of_freedom(
        self, profile, batch, n_words
    ):
        """A tuned plan may give a one-gate island a wider chunk than a
        5000-gate spine - and when the cache budget is large enough
        relative to the floor, it must (the per-cone regression the old
        import-time VECTOR_CHUNK constant made impossible)."""
        plan = TunedPlan(profile)
        shallow = plan.chunk_words(0, batch, n_words)
        deep = plan.chunk_words(5000, batch, n_words)
        assert shallow >= deep
        if (
            profile.cache_words // (batch + 1) > 2 * plan.chunk_words(5000, batch, 1 << 30)
            and profile.cache_words // (batch + 1) < n_words
        ):
            assert shallow > deep


class TestProfileValidation:
    def test_costs_must_be_positive(self):
        with pytest.raises(ValueError, match="must be positive"):
            TuningProfile(name="bad", word_ns=0.0, call_ns=1.0, block_ns=1.0,
                          cache_words=1)
        with pytest.raises(ValueError, match="cache_words must be >= 1"):
            TuningProfile(name="bad", word_ns=1.0, call_ns=1.0, block_ns=1.0,
                          cache_words=0)

    def test_non_finite_costs_rejected_at_load_time(self, tmp_path):
        """Regression: json parses NaN/Infinity literals, and neither
        compares <= 0 - they must fail profile validation (the
        documented ValueError), not surface later as an OverflowError
        deep inside a chunk computation."""
        for literal in ("NaN", "Infinity", "-Infinity"):
            path = tmp_path / f"{literal}.json"
            path.write_text(
                '{"name": "bad", "word_ns": 1.0, "call_ns": %s, '
                '"block_ns": 1.0, "cache_words": 64}' % literal
            )
            with pytest.raises(ValueError, match="invalid tuning profile"):
                TuningProfile.load(path)

    def test_missing_fields_named_in_error(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"name": "partial", "word_ns": 1.0}))
        with pytest.raises(ValueError, match="missing fields") as excinfo:
            TuningProfile.load(path)
        message = str(excinfo.value)
        assert "call_ns" in message and "cache_words" in message

    def test_malformed_json_raises_invalid_profile(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="invalid tuning profile"):
            TuningProfile.load(path)

    def test_non_object_json_raises_invalid_profile(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="expected a JSON object"):
            TuningProfile.load(path)


class TestDefaultPlanReadsModuleConstants:
    """Regression (the latent import-time-constant assumption): all
    chunk/window reads route through the plan object, and the default
    plan reads the module constants *at call time* - a monkeypatched
    ``vector.VECTOR_CHUNK`` must keep steering every chunk, which the
    old inlined reads only honoured in some code paths."""

    def test_default_chunk_tracks_monkeypatched_vector_chunk(self, monkeypatch):
        import repro.simulate.vector as vector_module

        plan = DefaultPlan()
        for chunk in (1, 3, 77, 4096):
            monkeypatch.setattr(vector_module, "VECTOR_CHUNK", chunk)
            assert plan.chunk_words(0, 1, 1 << 20) == chunk
            assert plan.chunk_words(500, 64, 1 << 20) == chunk
            assert plan.pricing_chunk(500, 64) == chunk
        monkeypatch.setattr(vector_module, "VECTOR_CHUNK", 1 << 30)
        assert plan.chunk_words(0, 1, 10) == 10  # still clamped to n_words

    def test_default_windows_track_module_constants(self, monkeypatch):
        import repro.simulate.sharded as sharded_module
        import repro.simulate.vector as vector_module

        plan = DefaultPlan()
        monkeypatch.setattr(vector_module, "VECTOR_WINDOW", 123)
        monkeypatch.setattr(sharded_module, "DEFAULT_WINDOW", 77)
        assert plan.lane_window(1 << 20) == 123
        assert plan.bigint_window(1 << 20) == 77
        assert plan.shard_window(1 << 20, None, "vector") == 77
        assert plan.shard_window(1 << 20, None, "compiled") == 77

    def test_default_overhead_tracks_module_constant(self, monkeypatch):
        import repro.simulate.vector as vector_module

        plan = DefaultPlan()
        monkeypatch.setattr(vector_module, "COALESCE_OVERHEAD_WORDS", 99)
        assert plan.coalesce_overhead_words() == 99

    def test_default_serial_window_is_whole_set(self):
        plan = DefaultPlan()
        assert plan.serial_window(12345) == 12345
        assert plan.serial_window(0) == 1


class TestResolution:
    def test_none_and_default_resolve_to_the_same_plan(self):
        assert resolve_plan(None) is resolve_plan("default")
        assert resolve_plan(None).name == DEFAULT_TUNING == "default"

    def test_available_tunings_sorted(self):
        assert available_tunings() == tuple(sorted(available_tunings()))
        assert available_tunings() == ("auto", "default")

    def test_profile_and_plan_instances_accepted(self):
        profile = TuningProfile(name="inline", word_ns=1.0, call_ns=2.0,
                                block_ns=1.0, cache_words=1 << 16)
        plan = resolve_plan(profile)
        assert plan.profile == profile
        assert resolve_plan(plan) is plan

    def test_auto_plan_memoised_per_process(self):
        assert resolve_plan("auto") is resolve_plan("auto")
        assert resolve_plan("auto").name == "auto"

    def test_auto_plan_persists_to_env_path(self, monkeypatch, tmp_path):
        import repro.simulate.tuning as tuning_module

        path = tmp_path / "host.json"
        monkeypatch.setenv(tuning_module.PROFILE_ENV, str(path))
        monkeypatch.setattr(tuning_module, "_AUTO_PLAN", None)
        first = resolve_plan("auto")
        assert path.exists()
        monkeypatch.setattr(tuning_module, "_AUTO_PLAN", None)
        second = resolve_plan("auto")  # reloaded, not re-calibrated
        assert second.profile == first.profile

    def test_profile_path_resolves_and_is_cached(self, tmp_path):
        profile = TuningProfile(name="saved", word_ns=1.0, call_ns=3.0,
                                block_ns=2.0, cache_words=4096)
        path = str(tmp_path / "saved.json")
        profile.save(path)
        plan = resolve_plan(path)
        assert plan.profile == profile
        assert resolve_plan(path) is plan

    def test_unknown_plan_message_lists_available_plans(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_plan("no/such/profile.json")
        assert str(excinfo.value) == (
            "unknown tuning plan 'no/such/profile.json'; available plans: "
            "auto, default (or a tuning-profile JSON path)"
        )

    def test_non_string_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown tuning plan"):
            resolve_plan(1536)


class TestCalibration:
    def test_calibrated_profile_is_plannable(self):
        profile = calibrate_profile(name="probe")
        assert profile.name == "probe"
        assert profile.word_ns > 0 and profile.call_ns > 0 and profile.block_ns > 0
        assert profile.cache_words >= 1
        assert profile.call_overhead_words >= 1
        plan = TunedPlan(profile)
        assert 1 <= plan.chunk_words(48, 16, 1 << 20) <= 1 << 20

    def test_calibrated_profile_round_trips(self, tmp_path):
        profile = calibrate_profile()
        path = tmp_path / "host.json"
        profile.save(path)
        assert TuningProfile.load(path) == profile
