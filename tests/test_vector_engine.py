"""Vector (numpy lane-array) engine mechanics.

Cross-engine bit-identity lives in the registry-driven harness
(``test_engine_equivalence.py``); this file covers what is specific to
the lane backend: the big-int <-> uint64-lane bridges, the batched
cone pass (grouping, activation filtering, chunk boundaries), the
per-fault ``difference`` API, and the ``sharded+vector`` composition
through a genuine worker pool.
"""

import numpy as np
import pytest

from engine_test_utils import all_faults, results_identical

from repro.circuits.generators import (
    and_cone,
    c17,
    domino_carry_chain,
    random_network,
)
from repro.netlist import CellFactory, Network, NetworkFault
from repro.simulate import (
    PatternSet,
    VectorNetwork,
    VectorSimulation,
    fault_simulate,
    vector_compile,
    vector_fault_simulate,
)
from repro.simulate.compiled import compile_network
from repro.simulate.faultsim import compiled_difference_words
from repro.simulate.logicsim import pack_words, unpack_words
from repro.simulate.sharded import sharded_fault_simulate
from repro.simulate.vector import vector_difference_words


class TestWordBridges:
    def test_pack_unpack_roundtrip(self):
        for count in (0, 1, 63, 64, 65, 130, 1000):
            bits = (0x9E3779B97F4A7C15 * (count + 1)) & ((1 << count) - 1)
            words = pack_words(bits, count)
            assert words.dtype == np.uint64
            assert words.shape == ((count + 63) // 64,)
            assert unpack_words(words, count) == bits

    def test_pack_masks_excess_bits(self):
        words = pack_words((1 << 100) - 1, 10)
        assert unpack_words(words, 10) == (1 << 10) - 1

    def test_to_words_layout(self):
        patterns = PatternSet.random(("a", "b", "c"), 131, seed=3)
        words = patterns.to_words()
        assert words.shape == (3, 3)
        for row, name in enumerate(patterns.names):
            for index in range(patterns.count):
                lane = int(words[row, index // 64])
                assert (lane >> (index % 64)) & 1 == (
                    patterns.env[name] >> index
                ) & 1

    def test_from_words_roundtrip(self):
        patterns = PatternSet.random(("a", "b"), 200, seed=5, probabilities={"b": 0.1})
        rebuilt = PatternSet.from_words(
            patterns.names, patterns.to_words(), patterns.count
        )
        assert rebuilt.names == patterns.names
        assert rebuilt.env == patterns.env
        assert rebuilt.count == patterns.count

    def test_from_words_rejects_bad_shape(self):
        patterns = PatternSet.random(("a", "b"), 100, seed=6)
        with pytest.raises(ValueError, match="shape"):
            PatternSet.from_words(("a",), patterns.to_words(), 100)
        with pytest.raises(ValueError, match="shape"):
            PatternSet.from_words(("a", "b"), patterns.to_words(), 300)

    def test_empty_set_bridges(self):
        empty = PatternSet(("a",), {"a": 0}, 0)
        words = empty.to_words()
        assert words.shape == (1, 0)
        rebuilt = PatternSet.from_words(("a",), words, 0)
        assert rebuilt.count == 0 and rebuilt.env == {"a": 0}

    def test_pack_masks_excess_bits_at_zero_count(self):
        """Regression: nonzero payload bits with count == 0 must mask to
        the empty word array, not overflow ``int.to_bytes``."""
        words = pack_words(5, 0)
        assert words.shape == (0,)
        assert unpack_words(words, 0) == 0


class TestVectorSimulation:
    def test_simulate_values_match_interpreted(self):
        network = c17()
        patterns = PatternSet.random(network.inputs, 200, seed=4)
        sim = vector_compile(network).simulate(patterns)
        assert isinstance(sim, VectorSimulation)
        assert sim.as_dict() == network.evaluate_bits(patterns.env, patterns.mask)
        for net in network.outputs:
            assert sim.value_of(net) == sim.as_dict()[net]

    def test_difference_matches_compiled_per_fault(self):
        network = domino_carry_chain(4)
        patterns = PatternSet.random(network.inputs, 150, seed=7)
        compiled_sim = compile_network(network).simulate(patterns.env, patterns.mask)
        vector_sim = vector_compile(network).simulate(patterns)
        for fault in all_faults(network):
            assert vector_sim.difference(fault) == compiled_sim.difference(
                fault
            ), fault.describe()

    def test_ghost_faults_are_zero_difference(self):
        network = and_cone(3)
        patterns = PatternSet.exhaustive(network.inputs)
        sim = vector_compile(network).simulate(patterns)
        assert sim.difference(NetworkFault.stuck_at("ghost", 1)) == 0
        template = network.enumerate_faults()[0]
        orphan = NetworkFault.cell_fault(
            "no_such_gate", template.class_index, template.function
        )
        assert sim.difference(orphan) == 0

    def test_stuck_input_that_is_also_output(self):
        factory = CellFactory("domino-CMOS")
        network = Network("passthrough")
        network.add_input("a")
        network.add_input("b")
        network.add_gate("g", factory.and_gate(2), {"i1": "a", "i2": "b"}, "z")
        network.mark_output("z")
        network.mark_output("a")
        patterns = PatternSet.exhaustive(network.inputs)
        compiled_sim = compile_network(network).simulate(patterns.env, patterns.mask)
        vector_sim = vector_compile(network).simulate(patterns)
        for fault in [NetworkFault.stuck_at("a", 0), NetworkFault.stuck_at("a", 1)]:
            assert vector_sim.difference(fault) == compiled_sim.difference(fault)

    def test_vector_network_reuses_compiled_program(self):
        network = c17()
        vector = vector_compile(network)
        assert isinstance(vector, VectorNetwork)
        assert vector.compiled is compile_network(network)


class TestBatchedWindows:
    @pytest.mark.parametrize("window", [1, 7, 64, 333])
    def test_difference_words_windowed_exact(self, window):
        network = domino_carry_chain(4)
        patterns = PatternSet.random(network.inputs, 150, seed=17)
        faults = all_faults(network)
        assert vector_difference_words(
            network, patterns, faults, window=window
        ) == compiled_difference_words(network, patterns, faults)

    def test_chunk_boundaries_exact(self, monkeypatch):
        """Results must not depend on the cone chunking granularity.

        Regression for the import-time-constant assumption: every chunk
        read routes through the execution plan, whose *default* plan
        reads ``VECTOR_CHUNK`` at call time - so this monkeypatch must
        keep steering the fault passes."""
        import repro.simulate.vector as vector_module

        network = random_network(n_inputs=6, n_gates=14, seed=11)
        patterns = PatternSet.random(network.inputs, 500, seed=3)
        faults = all_faults(network)
        reference = fault_simulate(network, patterns, faults, engine="compiled")
        for chunk in (1, 2, 3, 1536):
            monkeypatch.setattr(vector_module, "VECTOR_CHUNK", chunk)
            results_identical(
                vector_fault_simulate(network, patterns, faults), reference
            )

    def test_monkeypatched_chunk_actually_reaches_the_cone_loop(self, monkeypatch):
        """The default plan must read VECTOR_CHUNK per call, not hold an
        import-time snapshot: patching the module constant changes the
        width the cone pass tiles with."""
        import repro.simulate.vector as vector_module
        from repro.simulate.tuning import resolve_plan

        seen = []
        default_plan = resolve_plan("default")
        original = type(default_plan).chunk_words

        def spy(self, cone_gates, batch, n_words):
            width = original(self, cone_gates, batch, n_words)
            seen.append(width)
            return width

        monkeypatch.setattr(type(default_plan), "chunk_words", spy)
        network = random_network(n_inputs=6, n_gates=14, seed=11)
        patterns = PatternSet.random(network.inputs, 500, seed=3)
        faults = all_faults(network)
        monkeypatch.setattr(vector_module, "VECTOR_CHUNK", 3)
        vector_fault_simulate(network, patterns, faults)
        assert seen and set(seen) == {3}

    def test_tuned_plan_gives_per_cone_chunk_widths(self):
        """What the global constant could never express: one run tiles a
        deep spine cone narrower than a shallow island - and stays
        bit-identical while doing it."""
        from repro.circuits.generators import skewed_cone_network
        from repro.simulate import TuningProfile
        from repro.simulate.tuning import TunedPlan

        profile = TuningProfile(
            name="per-cone", word_ns=1.0, call_ns=1.0, block_ns=1.0,
            cache_words=512,
        )
        plan = TunedPlan(profile)
        widths = []
        original = TunedPlan.chunk_words

        class Spy(TunedPlan):
            def chunk_words(self, cone_gates, batch, n_words):
                width = original(self, cone_gates, batch, n_words)
                widths.append((cone_gates, width))
                return width

        network = skewed_cone_network(depth=12, islands=4)
        patterns = PatternSet.random(network.inputs, 3000, seed=13)
        faults = all_faults(network)
        reference = fault_simulate(network, patterns, faults, engine="compiled")
        results_identical(
            vector_fault_simulate(network, patterns, faults, tune=Spy(profile)),
            reference,
        )
        assert len({width for _cone, width in widths}) > 1
        deepest = max(cone for cone, _width in widths)
        shallowest = min(cone for cone, _width in widths)
        assert max(w for c, w in widths if c == deepest) <= min(
            w for c, w in widths if c == shallowest
        )
        # The same plan resolves through the registry path too.
        results_identical(
            fault_simulate(network, patterns, faults, engine="vector", tune=plan),
            reference,
        )

    def test_mostly_inactive_batch_compression(self):
        """A batch whose faults mostly never activate in the window is
        compressed to its active rows; results stay exact."""
        network = and_cone(4)
        # Constant-0 inputs: s-a-0 faults never activate, s-a-1 do.
        vectors = [{net: 0 for net in network.inputs}] * 70
        patterns = PatternSet.from_vectors(network.inputs, vectors)
        faults = [
            NetworkFault.stuck_at(net, value)
            for net in network.inputs
            for value in (0, 1)
        ]
        results_identical(
            vector_fault_simulate(network, patterns, faults),
            fault_simulate(network, patterns, faults, engine="compiled"),
        )

    def test_stop_at_first_detection_windows(self):
        network = domino_carry_chain(4)
        patterns = PatternSet.random(network.inputs, 700, seed=21)
        faults = all_faults(network)
        results_identical(
            vector_fault_simulate(
                network, patterns, faults, stop_at_first_detection=True
            ),
            fault_simulate(
                network, patterns, faults, stop_at_first_detection=True,
                engine="compiled",
            ),
        )


class TestShardedVectorComposition:
    def test_pooled_sharded_vector_identical(self):
        """shards x lanes through a genuine worker pool (min_pool_work=0
        forces it) must stay bit-identical to the compiled engine."""
        network = domino_carry_chain(4)
        patterns = PatternSet.random(network.inputs, 220, seed=5)
        faults = all_faults(network)
        reference = fault_simulate(network, patterns, faults, engine="compiled")
        for jobs in (1, 2, 3):
            pooled = sharded_fault_simulate(
                network, patterns, faults, jobs=jobs, min_pool_work=0,
                engine="vector",
            )
            results_identical(pooled, reference)

    def test_registry_name_composes(self):
        network = domino_carry_chain(3)
        patterns = PatternSet.random(network.inputs, 128, seed=9)
        faults = all_faults(network)
        results_identical(
            fault_simulate(network, patterns, faults, engine="sharded+vector", jobs=2),
            fault_simulate(network, patterns, faults, engine="compiled"),
        )
