"""Shared helpers for the engine test files.

The equivalence harness, sharded, vector and estimator-invariant test
files import these instead of each keeping a copy (a plain module, not
``conftest.py``: the bare ``conftest`` import would collide with
``benchmarks/conftest.py`` when pytest collects both trees).
"""


def all_faults(network):
    """The full fault universe - cell classes and net stuck-ats."""
    return network.enumerate_faults(include_cell_classes=True, include_stuck_at=True)


def results_identical(a, b):
    """Assert two FaultSimResults are bit-identical on every field."""
    assert a.detected == b.detected
    assert a.detection_counts == b.detection_counts
    assert a.undetected == b.undetected
    assert a.pattern_count == b.pattern_count


#: A .bench netlist covering every supported gate type (including the
#: bipolar XOR mapping and a 3-input XOR); parsed fresh per
#: differential_circuits() call so the parser output rides the whole
#: engine x schedule x plan x collapse sweep with no special-casing.
BENCH_ZOO = """\
# bench_zoo - every .bench gate type once
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
OUTPUT(w)
d = AND(a, b)
e = OR(b, c)
f = NAND(a, c)
g = NOR(d, e)
h = XOR(f, g)
i = NOT(h)
z = BUFF(i)
w = XOR(a, b, c)
"""


def differential_circuits():
    """The canonical circuit zoo of the differential harness: the fixed
    generators, random networks of every technology, and a parsed
    ``.bench`` netlist.  Returned fresh per call so test files can't
    mutate shared networks."""
    from repro.circuits.generators import (
        and_cone,
        c17,
        domino_carry_chain,
        dual_rail_parity_tree,
        random_network,
    )
    from repro.netlist import parse_bench

    return [
        and_cone(5),
        domino_carry_chain(4),
        dual_rail_parity_tree(4),
        c17(),
        random_network(n_inputs=6, n_gates=14, seed=11),
        random_network(n_inputs=5, n_gates=10, technology="dynamic-nMOS", seed=23),
        random_network(n_inputs=5, n_gates=10, technology="static-CMOS", seed=37),
        random_network(n_inputs=5, n_gates=9, technology="nMOS", seed=41),
        parse_bench(BENCH_ZOO, name="bench_zoo"),
    ]
