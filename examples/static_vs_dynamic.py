"""The paper's central contrast: static CMOS misbehaves, dynamic MOS does not.

Reproduces, side by side:

* Fig. 1 - a stuck-open static CMOS NOR remembers its previous state
  (the function table gains a Z(t) row), so it needs an ordered
  *two-pattern* test, which this script also generates and validates;
* the same physical fault universe on a domino CMOS and dynamic nMOS
  gate: every fault stays combinational and maps to a faulty function
  or an output stuck-at - single vectors suffice.

Run:  python examples/static_vs_dynamic.py
"""

from repro.atpg import generate_two_pattern_test, validate_two_pattern_test
from repro.circuits.figures import fig1_function_table, format_fig1_table
from repro.faults import FaultCategory, classify, enumerate_gate_faults
from repro.logic import minimal_sop_string, parse_expression
from repro.netlist import CellFactory, Network, stuck_open_faults_of_gate
from repro.tech import DominoCmosGate, DynamicNmosGate


def show_static_pathology() -> None:
    print("== Fig. 1: static CMOS NOR with an open pull-down connection ==")
    print(format_fig1_table(fig1_function_table()))
    print()

    factory = CellFactory("static-CMOS")
    network = Network("nor")
    network.add_input("a")
    network.add_input("b")
    network.add_gate("nor", factory.or_gate(2), {"i1": "a", "i2": "b"}, "z")
    network.mark_output("z")
    print("two-pattern tests for every stuck-open fault of the NOR:")
    for fault in stuck_open_faults_of_gate(network, "nor"):
        pair = generate_two_pattern_test(network, fault)
        assert pair is not None and validate_two_pattern_test(network, fault, pair)
        print(f"  {fault.label}:")
        print(f"    init  {pair.init_vector}  (drives z to {pair.retained_value})")
        print(f"    test  {pair.test_vector}  (z floats, retains the wrong value)")
    print()


def show_dynamic_discipline() -> None:
    for gate, title in (
        (DominoCmosGate(parse_expression("a*b+c"), name="domino"), "domino CMOS"),
        (DynamicNmosGate(parse_expression("a*b+c"), name="dyn"), "dynamic nMOS"),
    ):
        print(f"== {title} gate, same physical fault model ==")
        sequential = 0
        for entry in enumerate_gate_faults(gate, include_line_opens=False):
            prediction = classify(gate, entry.fault)
            if prediction.category is FaultCategory.SEQUENTIAL:
                sequential += 1
                continue
            if prediction.predicted is not None:
                function = minimal_sop_string(prediction.predicted)
                print(f"  {entry.label:<28} -> z = {function}")
            else:
                print(f"  {entry.label:<28} -> {prediction.category.value}: {prediction.notes}")
        print(f"  sequential faults: {sequential}  "
              "(claim (a) of the paper: always zero)")
        print()


if __name__ == "__main__":
    show_static_pathology()
    show_dynamic_discipline()
