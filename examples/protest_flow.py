"""The full PROTEST flow of Fig. 8 on a random-pattern-resistant circuit.

Pipeline, exactly as the block diagram reads:

    circuit + functional library
      -> signal probabilities
      -> fault detection probabilities
      -> necessary test length for the demanded confidence
      -> optimized input signal probabilities
      -> weighted random pattern generation (and its NLFSR realisation)
      -> static fault simulation to validate the prediction

Run:  python examples/protest_flow.py
"""

from repro.circuits.generators import and_cone
from repro.protest import Protest
from repro.selftest import WeightedPatternGenerator
from repro.simulate import PatternSet, fault_simulate

CONFIDENCE = 0.999


def main() -> None:
    network = and_cone(10)
    print(f"circuit: {network.name} "
          f"({len(network.inputs)} inputs, {len(network.gates)} gates)")
    protest = Protest(network)

    # -- estimates under uniform inputs ------------------------------------
    report = protest.analyse(confidence=CONFIDENCE)
    print()
    print(report.format_summary())

    # -- optimized input probabilities -------------------------------------
    optimization = protest.optimize(confidence=CONFIDENCE)
    print()
    print(optimization.format_summary())

    # -- hardware realisation of the weights (ref. [11]) -------------------
    generator = WeightedPatternGenerator(optimization.optimized_probabilities)
    realised = generator.realised_probabilities()
    print()
    print("NLFSR realisation of the optimized weights (dyadic):")
    for name in sorted(realised):
        wanted = optimization.optimized_probabilities[name]
        print(f"  {name}: wanted {wanted:.2f} -> realised {realised[name]:.3f}")

    # -- validation by static fault simulation ------------------------------
    length = int(min(optimization.optimized_test_length, 1 << 15))
    patterns = PatternSet.random(
        network.inputs, length, probabilities=realised
    )
    validation = fault_simulate(network, patterns, protest.faults)
    print()
    print("validation with the realised weighted patterns:")
    print(f"  {validation.format_summary()}")

    uniform_patterns = PatternSet.random(network.inputs, length)
    uniform = fault_simulate(network, uniform_patterns, protest.faults)
    print(f"  same length, uniform patterns: "
          f"{100.0 * uniform.coverage:.1f}% coverage "
          f"({len(uniform.undetected)} faults escape)")


if __name__ == "__main__":
    main()
