"""Fault dictionaries: diagnosis as a dividend of the combinational model.

Section 1 notes that static CMOS stuck-open faults break "the fault
injection algorithms of parallel, deductive or concurrent fault
simulators"; the same memory effect breaks fault *dictionaries*
(responses depend on pattern order).  Section 3's result buys them
back for dynamic MOS: faulty behaviour is a fixed combinational
function, so one simulation of every library fault class yields a
syndrome table usable for production diagnosis.

This example builds the dictionary for a domino carry chain, shows
perfect self-diagnosis of each class, reports the diagnostic
resolution, and demonstrates nearest-neighbour lookup for a defect
outside the modelled universe.

Run:  python examples/fault_diagnosis.py
"""

from repro.circuits.generators import domino_carry_chain
from repro.simulate import FaultDictionary, PatternSet


def main() -> None:
    network = domino_carry_chain(4)
    patterns = PatternSet.exhaustive(network.inputs)
    dictionary = FaultDictionary(network, patterns)
    print(f"dictionary for {network.name}: "
          f"{len(dictionary.faults)} fault classes x {patterns.count} patterns")

    # Self-diagnosis: every class maps back to itself.
    exact = sum(
        1
        for fault in dictionary.faults
        if fault.describe() in dictionary.diagnose_fault(fault).exact_matches
    )
    print(f"self-diagnosis: {exact}/{len(dictionary.faults)} classes "
          "recovered exactly")

    distinguished, total = dictionary.distinguishable_pairs()
    print(f"diagnostic resolution: {distinguished}/{total} fault pairs "
          f"distinguished ({100.0 * distinguished / total:.1f}%)")

    # An unmodelled defect: take one class's responses and corrupt one bit
    # (say, a marginal second defect) - nearest-neighbour lookup still
    # points at the right neighbourhood.
    target = dictionary.faults[3]
    responses = dict(
        network.output_bits(patterns.env, patterns.mask, target)
    )
    responses[network.outputs[0]] ^= 1  # one extra discrepancy bit
    diagnosis = dictionary.diagnose(responses)
    print()
    print(f"noisy observation derived from {target.describe()!r}:")
    print(f"  exact matches: {diagnosis.exact_matches or 'none'}")
    print("  nearest entries (label, Hamming distance):")
    for label, distance in diagnosis.nearest:
        print(f"    {label:<40} {distance}")


if __name__ == "__main__":
    main()
