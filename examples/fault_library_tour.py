"""A tour of the fault library generator across all five technologies.

For each technology tag of the cell language, describe a cell, generate
the library, and print the class table - then emit the Fig. 9 library
as a standalone Python module (the modern analogue of the PASCAL
program the 1986 tool produced) and execute it.

Run:  python examples/fault_library_tour.py
"""

from repro.cells import Cell, generate_library
from repro.circuits.figures import FIG9_TEXT

CELLS = {
    "domino-CMOS": FIG9_TEXT,
    "dynamic-nMOS": """
        TECHNOLOGY dynamic-nMOS;
        INPUT a,b,c;
        OUTPUT z;
        z := a*b+c;
    """,
    "nMOS": """
        TECHNOLOGY nMOS;
        INPUT a,b;
        OUTPUT z;
        z := a+b;
    """,
    "static-CMOS": """
        TECHNOLOGY static-CMOS;
        INPUT a,b;
        OUTPUT z;
        z := a*b;
    """,
    "bipolar": """
        TECHNOLOGY bipolar;
        INPUT a,b,c;
        OUTPUT z;
        z := !a*b+!b*c;
    """,
}


def main() -> None:
    for technology, text in CELLS.items():
        cell = Cell.from_text(text, name=technology.replace("-", "_"))
        library = generate_library(cell)
        print(f"===== {technology} cell: {cell.output} = "
              f"{cell.output_function.to_paper_syntax()} =====")
        print(library.format_table())
        if library.requires_two_pattern_tests:
            print("  NOTE: static CMOS stuck-open faults additionally need "
                  "two-pattern tests (refs. [16],[18]).")
        print()

    # Emit and execute the generated module for the Fig. 9 cell.
    library = generate_library(Cell.from_text(FIG9_TEXT, name="fig9"))
    source = library.to_python_source()
    print("===== generated Python module for the fig9 library =====")
    print(source)
    namespace: dict = {}
    exec(source, namespace)  # noqa: S102 - executing our own artifact
    sample = dict(a=1, b=0, c=1, d=0, e=0)
    print(f"fault_free(**{sample}) = {namespace['fault_free'](**sample)}")
    labels, class9 = namespace["FAULT_CLASSES"][9]
    print(f"class 9 {labels}: value on the same input = {class9(**sample)}")


if __name__ == "__main__":
    main()
