"""Quickstart: from a cell description to a verified fault library.

This walks the paper's core loop in a few lines:

1. describe a domino CMOS cell in the Section 5 language,
2. generate its fault library (all faulty functions, collapsed),
3. cross-check one fault class against the charge-aware switch-level
   simulator,
4. run a quick PROTEST analysis of a small network using the cell.

Run:  python examples/quickstart.py
"""

from repro.cells import Cell, generate_library
from repro.faults import FaultKind, PhysicalFault
from repro.netlist import CellFactory, Network
from repro.protest import Protest

CELL_TEXT = """
TECHNOLOGY domino-CMOS;
INPUT a,b,c,d,e;
OUTPUT u;
x1 := a*(b+c);
x2 := d*e;
u := x1+x2;
"""


def main() -> None:
    # 1. Parse the cell (Fig. 9 of the paper).
    cell = Cell.from_text(CELL_TEXT, name="fig9")
    print(f"cell {cell.name}: {cell.output} = "
          f"{cell.output_function.to_paper_syntax()} "
          f"({cell.transistor_count()} SN transistors, {cell.technology})")

    # 2. Generate the fault library - the paper's class table.
    library = generate_library(cell)
    print()
    print(library.format_table())

    # 3. Verify one class physically: stuck-closed transistor 'b' must
    # measure u = a + d*e on the transistor-level gate model.
    gate = cell.gate_model()
    fault = PhysicalFault(FaultKind.TRANSISTOR_CLOSED, switch=gate.sn_switches["T2"])
    measured, _ = gate.faulty_function(fault)
    predicted = next(
        cls for cls in library.classes if "b closed" in cls.labels
    ).function.table
    print()
    print(f"switch-level check of 'b closed': measured u = "
          f"{'matches prediction' if measured == predicted else 'MISMATCH'}")

    # 4. PROTEST on a two-gate network using the cell.
    factory = CellFactory("domino-CMOS")
    network = Network("quickstart")
    for name in ("a", "b", "c", "d", "e", "sel"):
        network.add_input(name)
    network.add_gate(
        "u1", cell, {"a": "a", "b": "b", "c": "c", "d": "d", "e": "e"}, "u"
    )
    network.add_gate("u2", factory.and_gate(2), {"i1": "u", "i2": "sel"}, "z")
    network.mark_output("z")

    report = Protest(network).analyse(confidence=0.999)
    print()
    print(report.format_summary())


if __name__ == "__main__":
    main()
