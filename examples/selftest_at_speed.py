"""Random self-test at maximum operating speed (Sections 3-4).

The paper's answer to performance-degradation faults: do not try to
measure leakage, put BILBOs around the logic and run the random test at
full clock rate.  This example:

1. runs an LFSR+MISR self-test session on a domino carry chain and
   shows every library fault class corrupting the signature;
2. injects a CMOS-3 case (b) fault (weak stuck-closed precharge - a
   pure delay fault) into a transistor-level domino gate and compares
   signatures at maximum speed vs at a slow external-tester clock;
3. shows the BILBO register cycling through its four modes.

Run:  python examples/selftest_at_speed.py
"""

from repro.circuits.generators import domino_carry_chain
from repro.logic import parse_expression
from repro.selftest import (
    Bilbo,
    BilboMode,
    at_speed_gate_selftest,
    logic_selftest,
)
from repro.simulate.timingsim import rated_period
from repro.switchlevel import FaultKind, PhysicalFault
from repro.tech import DominoCmosGate


def logic_session() -> None:
    network = domino_carry_chain(4)
    faults = network.enumerate_faults()
    print(f"== LFSR + MISR session on {network.name} "
          f"({len(faults)} fault classes) ==")
    golden = logic_selftest(network, None, cycles=256)
    print(f"golden signature: {golden.golden_signature:#06x}")
    detected = sum(
        1 for fault in faults if logic_selftest(network, fault, cycles=256).detected
    )
    print(f"faults detected by signature: {detected}/{len(faults)}")
    print()


def at_speed_session() -> None:
    gate = DominoCmosGate(parse_expression("a*b"), precharge_resistance=4.0)
    fault = PhysicalFault(FaultKind.TRANSISTOR_CLOSED, switch="T1")
    rated = rated_period(gate, sequence=True)
    print("== CMOS-3 case (b): delay fault on a domino AND gate ==")
    print(f"rated clock-phase period: {rated} RC units")
    for label, period in (("maximum speed", rated), ("slow external test", 8 * rated)):
        outcome = at_speed_gate_selftest(gate, fault, cycles=48, period=period)
        verdict = "signature differs -> DETECTED" if outcome.detected else "signature clean -> escapes"
        print(f"  {label:<20} (period {period:5.1f}): {verdict}")
    print()


def bilbo_modes() -> None:
    print("== one BILBO register, four modes ==")
    bilbo = Bilbo(8, seed=0b10110001)
    print(f"NORMAL load 0x5a      -> {bilbo.clock(parallel_in=[0,1,0,1,1,0,1,0])}")
    bilbo.set_mode(BilboMode.PRPG)
    patterns = [bilbo.clock() for _ in range(3)]
    print(f"PRPG 3 patterns       -> {patterns}")
    bilbo.set_mode(BilboMode.MISR)
    bilbo.clock(parallel_in=[1, 0, 0, 1, 0, 1, 1, 0])
    print(f"MISR after 1 response -> {bilbo.state:#04x}")
    bilbo.set_mode(BilboMode.SHIFT)
    print(f"SHIFT scan-out        -> {bilbo.scan_out()}")


if __name__ == "__main__":
    logic_session()
    at_speed_session()
    bilbo_modes()
